"""The write-ahead journal: framing, torn tails, corruption, batching."""

import threading

import pytest

from repro.errors import ConfigurationError, JournalError
from repro.state.journal import (
    MAGIC,
    JournalReader,
    JournalWriter,
    _encode_record,
    read_journal,
)
from repro.state.replication import JournalTailer


def write_records(path, payloads, fsync_every=1):
    with JournalWriter(str(path), fsync_every=fsync_every) as writer:
        return [writer.append(record) for record in payloads]


class TestRoundTrip:
    def test_records_come_back_in_order_with_seqs(self, tmp_path):
        path = tmp_path / "j.bin"
        seqs = write_records(path, [{"x": i} for i in range(5)])
        assert seqs == [1, 2, 3, 4, 5]
        records = read_journal(str(path))
        assert [r["x"] for r in records] == [0, 1, 2, 3, 4]
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        with JournalWriter(str(path)) as writer:
            assert writer.last_seq == 2
            assert writer.append({"x": 2}) == 3
        assert [r["seq"] for r in read_journal(str(path))] == [1, 2, 3]

    def test_reader_is_iterable(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 7}])
        assert [r["x"] for r in JournalReader(str(path))] == [7]

    def test_missing_file_is_empty_unless_strict(self, tmp_path):
        path = str(tmp_path / "absent.bin")
        assert read_journal(path) == []
        with pytest.raises(JournalError):
            read_journal(path, strict=True)

    def test_writer_owns_seq(self, tmp_path):
        with JournalWriter(str(tmp_path / "j.bin")) as writer:
            with pytest.raises(ConfigurationError):
                writer.append({"seq": 9})


class TestTornTail:
    def test_torn_payload_dropped_in_recovery_mode(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # rip bytes off the final payload
        records = read_journal(str(path))
        assert [r["x"] for r in records] == [0]
        with pytest.raises(JournalError):
            read_journal(str(path), strict=True)

    def test_torn_header_dropped_in_recovery_mode(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}])
        path.write_bytes(path.read_bytes() + b"\x05\x00")  # partial frame
        assert [r["x"] for r in read_journal(str(path))] == [0]
        with pytest.raises(JournalError):
            read_journal(str(path), strict=True)

    def test_writer_truncates_torn_tail_and_continues(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        intact = len(path.read_bytes())
        path.write_bytes(path.read_bytes() + b"\x99\x99\x99")
        with JournalWriter(str(path)) as writer:
            assert writer.last_seq == 2
            writer.append({"x": 2})
        records = read_journal(str(path), strict=True)
        assert [r["x"] for r in records] == [0, 1, 2]
        assert len(path.read_bytes()) > intact


class TestCorruption:
    def test_interior_crc_flip_always_raises(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 8] ^= 0xFF  # first byte of record 1's payload
        path.write_bytes(bytes(data))
        with pytest.raises(JournalError):
            read_journal(str(path))
        with pytest.raises(JournalError):
            read_journal(str(path), strict=True)

    def test_final_record_crc_flip_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert [r["x"] for r in read_journal(str(path))] == [0]
        with pytest.raises(JournalError):
            read_journal(str(path), strict=True)

    def test_sequence_gap_always_raises(self, tmp_path):
        path = tmp_path / "j.bin"
        body = MAGIC + _encode_record({"seq": 1}) + _encode_record({"seq": 3})
        path.write_bytes(body)
        with pytest.raises(JournalError, match="sequence gap"):
            read_journal(str(path))

    def test_bad_magic_always_raises(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(b"NOTJRNL\n" + _encode_record({"seq": 1}))
        with pytest.raises(JournalError, match="magic"):
            read_journal(str(path))


class TestTailing:
    """Live-tailing semantics the replication shipper depends on."""

    def test_poll_is_incremental(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        tailer = JournalTailer(str(path))
        assert [f.seq for f in tailer.poll()] == [1, 2]
        assert tailer.poll() == []
        write_records(path, [{"x": 2}])  # appends via reopen
        assert [f.record["x"] for f in tailer.poll()] == [2]

    def test_missing_file_is_an_empty_journal(self, tmp_path):
        tailer = JournalTailer(str(tmp_path / "absent.bin"))
        assert tailer.poll() == []

    def test_since_seq_parses_but_does_not_emit(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": i} for i in range(5)])
        tailer = JournalTailer(str(path), since_seq=3)
        assert [f.seq for f in tailer.poll()] == [4, 5]
        assert tailer.last_seq == 5

    def test_torn_tail_appearing_mid_read_completes_later(self, tmp_path):
        # the shipper's key edge: a record is half-written when the
        # tailer polls; the remaining bytes land afterwards and the
        # next poll must pick the record up whole
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        tailer = JournalTailer(str(path))
        assert len(tailer.poll()) == 2
        frame = _encode_record({"x": 2, "seq": 3})
        with open(path, "ab") as handle:
            handle.write(frame[:5])  # torn: partial header+payload
        assert tailer.poll() == []  # waits, does not drop or raise
        with open(path, "ab") as handle:
            handle.write(frame[5:])
        (completed,) = tailer.poll()
        assert completed.seq == 3
        assert completed.record["x"] == 2

    def test_truncated_then_rewritten_torn_tail_is_picked_up(self, tmp_path):
        # a restarting writer truncates the torn tail in place; the
        # tailer's offset stands at the end of the intact prefix and
        # the replacement bytes must be read from there
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}])
        tailer = JournalTailer(str(path))
        assert len(tailer.poll()) == 1
        with open(path, "ab") as handle:
            handle.write(b"\x99\x99\x99")
        assert tailer.poll() == []
        with JournalWriter(str(path)) as writer:  # truncates, appends
            writer.append({"x": 1})
        (frame,) = tailer.poll()
        assert frame.seq == 2

    def test_concurrent_append_while_shipping(self, tmp_path):
        # a writer appends (with batched fsyncs) while the tailer
        # polls: every record must arrive exactly once, in seq order
        path = tmp_path / "j.bin"
        total = 200
        writer = JournalWriter(str(path), fsync_every=8)

        def append_all():
            for i in range(total):
                writer.append({"x": i})
            writer.close()

        thread = threading.Thread(target=append_all)
        thread.start()
        tailer = JournalTailer(str(path))
        seen = []
        while len(seen) < total:
            seen.extend(tailer.poll())
        thread.join()
        assert [f.seq for f in seen] == list(range(1, total + 1))
        assert [f.record["x"] for f in seen] == list(range(total))
        assert tailer.poll() == []

    def test_interior_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 8] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(JournalError, match="CRC mismatch"):
            JournalTailer(str(path)).poll()

    def test_shrinking_below_the_offset_is_fatal(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        tailer = JournalTailer(str(path))
        tailer.poll()
        path.write_bytes(path.read_bytes()[: len(MAGIC)])
        with pytest.raises(JournalError, match="shrank"):
            tailer.poll()


class TestFsyncBatching:
    def test_appends_buffer_until_the_batch_boundary(self, tmp_path):
        path = tmp_path / "j.bin"
        writer = JournalWriter(str(path), fsync_every=4)
        for i in range(3):
            writer.append({"x": i})
        # nothing flushed yet: a concurrent reader sees an empty journal
        assert read_journal(str(path)) == []
        writer.append({"x": 3})
        assert [r["x"] for r in read_journal(str(path))] == [0, 1, 2, 3]
        writer.append({"x": 4})
        writer.sync()
        assert len(read_journal(str(path))) == 5
        writer.close()

    def test_close_flushes_pending_appends(self, tmp_path):
        path = tmp_path / "j.bin"
        writer = JournalWriter(str(path), fsync_every=100)
        writer.append({"x": 0})
        writer.close()
        assert len(read_journal(str(path))) == 1

    def test_fsync_every_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JournalWriter(str(tmp_path / "j.bin"), fsync_every=0)
