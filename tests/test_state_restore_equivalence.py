"""Restore equivalence: checkpoint mid-run, restore, continue — and land
on figures bit-identical to the uninterrupted run.

This is the contract that makes the durability subsystem usable for the
reproduction: a snapshot+restore must be architecturally invisible, in
every cache-knob configuration, the same way the host fast path and the
superblock tier are.  Two granularities are pinned:

* **mid-instruction-stream** — stop a machine after k instructions of a
  gate-calling program, snapshot, restore into a fresh machine (with
  every combination of host-cache knobs), run to HALT, and compare
  every architectural figure plus console and final registers;
* **call-boundary** — run a worker engine through a prefix of a gate
  call sequence, snapshot, restore, run the suffix, and compare each
  suffix call's full result and the cumulative totals against an
  uninterrupted engine.
"""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.errors import MachineHalted
from repro.hardening import HARDENING_FLAGS, HardeningConfig
from repro.serve.workers import GateCallEngine
from repro.sim.machine import Machine
from repro.sim.metrics import MetricsSnapshot
from repro.state.snapshot import restore_machine, snapshot_machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

#: restore-time host-cache knob combinations (block tier requires the
#: fast path, so (False, True) is not a legal machine)
KNOBS = [(False, False), (True, False), (True, True)]

GATE_PROGRAM = """
        .seg    sample
        .gates  1
main::  lda     =42
        eap4    back
        call    l_write,*
back:   ada     =1
        eap4    back2
        call    l_write,*
back2:  halt
l_write: .its   svc$write
"""


def start_sample(paged):
    machine = Machine(paged=paged)
    user = machine.add_user("operator")
    machine.store_program(">t>sample", GATE_PROGRAM, acl=USER_ACL)
    process = machine.login(user)
    machine.initiate(process, ">t>sample")
    machine.start(process, "sample$main", 4)
    return machine


def run_to_halt(machine):
    machine.processor.run(max_steps=100_000)


def figures(machine):
    processor = machine.processor
    return {
        "architectural": MetricsSnapshot.collect(processor).architectural(),
        "console": list(machine.console),
        "ring": processor.registers.ipr.ring,
        "a": processor.registers.a,
        "q": processor.registers.q,
        "halted": processor.halted,
    }


class TestMidStreamEquivalence:
    @pytest.mark.parametrize("paged", [False, True])
    @pytest.mark.parametrize("steps", [1, 3, 6, 10])
    def test_checkpoint_restore_continue_is_invisible(self, paged, steps):
        baseline = start_sample(paged)
        run_to_halt(baseline)
        expected = figures(baseline)

        interrupted = start_sample(paged)
        for _ in range(steps):
            try:
                interrupted.processor.step()
            except MachineHalted:
                break
        snap = snapshot_machine(interrupted)
        for fast_path, block_tier in KNOBS:
            restored = restore_machine(
                snap,
                fast_path_enabled=fast_path,
                block_tier_enabled=block_tier,
            )
            run_to_halt(restored)
            assert figures(restored) == expected, (
                f"divergence after restore at step {steps} with "
                f"fast_path={fast_path} block_tier={block_tier}"
            )

    def test_double_checkpoint_is_invisible(self):
        baseline = start_sample(paged=False)
        run_to_halt(baseline)
        expected = figures(baseline)

        interrupted = start_sample(paged=False)
        interrupted.processor.step()
        hop1 = restore_machine(snapshot_machine(interrupted))
        for _ in range(3):
            hop1.processor.step()
        hop2 = restore_machine(snapshot_machine(hop1))
        run_to_halt(hop2)
        assert figures(hop2) == expected


class TestHardenedRestoreEquivalence:
    """Snapshot/restore is invisible to the hardening extensions too:
    the flags, the key seed, the domain bindings, and — hardest — a
    MAC chain captured mid-call all survive the hop bit-identically."""

    @staticmethod
    def _start(hardening):
        machine = Machine(hardening=hardening)
        user = machine.add_user("operator")
        machine.store_program(">t>sample", GATE_PROGRAM, acl=USER_ACL)
        process = machine.login(user)
        machine.initiate(process, ">t>sample")
        machine.start(process, "sample$main", 4)
        return machine

    @pytest.mark.parametrize("flag", HARDENING_FLAGS)
    def test_each_flag_survives_the_hop(self, flag):
        hardening = HardeningConfig.from_flags([flag], auth_key_seed=77)
        baseline = self._start(hardening)
        run_to_halt(baseline)
        expected = figures(baseline)

        interrupted = self._start(hardening)
        for _ in range(4):
            interrupted.processor.step()
        restored = restore_machine(snapshot_machine(interrupted))
        assert restored.hardening == hardening
        run_to_halt(restored)
        assert figures(restored) == expected

    def test_mid_mac_chain_checkpoint_continues_bit_identically(self):
        """Snapshot inside a downward call — chain depth 1 — restore,
        and the upward return must verify against the restored chain."""
        hardening = HardeningConfig.from_flags(["auth_return_stack"])
        baseline = self._start(hardening)
        run_to_halt(baseline)
        expected = figures(baseline)

        interrupted = self._start(hardening)
        while len(interrupted.processor.auth_stack) == 0:
            interrupted.processor.step()
        # mid-chain: the CALL pushed its MAC frame, the RETURN has not
        # verified it yet
        chain = interrupted.processor.auth_stack.snapshot()
        assert chain
        restored = restore_machine(snapshot_machine(interrupted))
        assert restored.processor.auth_stack.snapshot() == chain
        run_to_halt(restored)
        assert figures(restored) == expected

    def test_restored_chain_rejects_tampering(self):
        """A snapshot with a doctored MAC chain fails the return."""
        from repro.cpu.faults import Fault, FaultCode

        interrupted = self._start(
            HardeningConfig.from_flags(["auth_return_stack"])
        )
        while len(interrupted.processor.auth_stack) == 0:
            interrupted.processor.step()
        snap = snapshot_machine(interrupted)
        snap["processor"]["hardening"]["auth_chain"][-1] ^= 1
        restored = restore_machine(snap)
        with pytest.raises(Fault) as excinfo:
            run_to_halt(restored)
        assert excinfo.value.code is FaultCode.ACV_AUTH_RETURN

    def test_domain_bindings_survive_the_hop(self):
        hardening = HardeningConfig.from_flags(["ring_domains"])
        machine = Machine(hardening=hardening)
        user = machine.add_user("operator")
        machine.store_program(">t>sample", GATE_PROGRAM, acl=USER_ACL)
        machine.assign_domain("sample", "appdomain")
        process = machine.login(user)
        machine.initiate(process, ">t>sample")
        segno = machine.supervisor.active_by_name["sample"].segno
        assert machine.processor.domains.domain_of(segno) == "appdomain"
        restored = restore_machine(snapshot_machine(machine))
        assert restored.processor.domains.domain_of(segno) == "appdomain"
        assert (
            restored.processor.domains.by_name
            == machine.processor.domains.by_name
        )


JOBS = [
    {"user": "alice", "ring": 4, "program": "call_loop", "args": {"count": 3}},
    {"user": "bob", "ring": 5, "program": "compute", "args": {"n": 40}},
    {"user": "alice", "ring": 4, "program": "echo", "args": {"value": 9}},
    {"user": "alice", "ring": 4, "program": "call_loop", "args": {"count": 5}},
    {"user": "carol", "ring": 5, "program": "compute", "args": {"n": 25}},
    {"user": "bob", "ring": 4, "program": "echo", "args": {"value": -3}},
]


class TestCallBoundaryEquivalence:
    @pytest.mark.parametrize("split", [1, 3, 5])
    def test_engine_resumes_bit_identically(self, split):
        straight = GateCallEngine()
        expected = [straight.run_job(dict(job)) for job in JOBS]

        prefix = GateCallEngine()
        for job in JOBS[:split]:
            prefix.run_job(dict(job))
        snap = snapshot_machine(
            prefix.machine, extra={"engine": prefix.bookkeeping()}
        )
        resumed = GateCallEngine.from_snapshot(snap)
        assert resumed.calls == prefix.calls
        assert resumed.total == prefix.total
        suffix = [resumed.run_job(dict(job)) for job in JOBS[split:]]
        assert suffix == expected[split:]
        assert resumed.total == straight.total
        assert resumed.calls == straight.calls
        assert (
            MetricsSnapshot.collect(resumed.machine.processor).architectural()
            == MetricsSnapshot.collect(
                straight.machine.processor
            ).architectural()
        )
