"""Restore equivalence: checkpoint mid-run, restore, continue — and land
on figures bit-identical to the uninterrupted run.

This is the contract that makes the durability subsystem usable for the
reproduction: a snapshot+restore must be architecturally invisible, in
every cache-knob configuration, the same way the host fast path and the
superblock tier are.  Two granularities are pinned:

* **mid-instruction-stream** — stop a machine after k instructions of a
  gate-calling program, snapshot, restore into a fresh machine (with
  every combination of host-cache knobs), run to HALT, and compare
  every architectural figure plus console and final registers;
* **call-boundary** — run a worker engine through a prefix of a gate
  call sequence, snapshot, restore, run the suffix, and compare each
  suffix call's full result and the cumulative totals against an
  uninterrupted engine.
"""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.errors import MachineHalted
from repro.serve.workers import GateCallEngine
from repro.sim.machine import Machine
from repro.sim.metrics import MetricsSnapshot
from repro.state.snapshot import restore_machine, snapshot_machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

#: restore-time host-cache knob combinations (block tier requires the
#: fast path, so (False, True) is not a legal machine)
KNOBS = [(False, False), (True, False), (True, True)]

GATE_PROGRAM = """
        .seg    sample
        .gates  1
main::  lda     =42
        eap4    back
        call    l_write,*
back:   ada     =1
        eap4    back2
        call    l_write,*
back2:  halt
l_write: .its   svc$write
"""


def start_sample(paged):
    machine = Machine(paged=paged)
    user = machine.add_user("operator")
    machine.store_program(">t>sample", GATE_PROGRAM, acl=USER_ACL)
    process = machine.login(user)
    machine.initiate(process, ">t>sample")
    machine.start(process, "sample$main", 4)
    return machine


def run_to_halt(machine):
    machine.processor.run(max_steps=100_000)


def figures(machine):
    processor = machine.processor
    return {
        "architectural": MetricsSnapshot.collect(processor).architectural(),
        "console": list(machine.console),
        "ring": processor.registers.ipr.ring,
        "a": processor.registers.a,
        "q": processor.registers.q,
        "halted": processor.halted,
    }


class TestMidStreamEquivalence:
    @pytest.mark.parametrize("paged", [False, True])
    @pytest.mark.parametrize("steps", [1, 3, 6, 10])
    def test_checkpoint_restore_continue_is_invisible(self, paged, steps):
        baseline = start_sample(paged)
        run_to_halt(baseline)
        expected = figures(baseline)

        interrupted = start_sample(paged)
        for _ in range(steps):
            try:
                interrupted.processor.step()
            except MachineHalted:
                break
        snap = snapshot_machine(interrupted)
        for fast_path, block_tier in KNOBS:
            restored = restore_machine(
                snap,
                fast_path_enabled=fast_path,
                block_tier_enabled=block_tier,
            )
            run_to_halt(restored)
            assert figures(restored) == expected, (
                f"divergence after restore at step {steps} with "
                f"fast_path={fast_path} block_tier={block_tier}"
            )

    def test_double_checkpoint_is_invisible(self):
        baseline = start_sample(paged=False)
        run_to_halt(baseline)
        expected = figures(baseline)

        interrupted = start_sample(paged=False)
        interrupted.processor.step()
        hop1 = restore_machine(snapshot_machine(interrupted))
        for _ in range(3):
            hop1.processor.step()
        hop2 = restore_machine(snapshot_machine(hop1))
        run_to_halt(hop2)
        assert figures(hop2) == expected


JOBS = [
    {"user": "alice", "ring": 4, "program": "call_loop", "args": {"count": 3}},
    {"user": "bob", "ring": 5, "program": "compute", "args": {"n": 40}},
    {"user": "alice", "ring": 4, "program": "echo", "args": {"value": 9}},
    {"user": "alice", "ring": 4, "program": "call_loop", "args": {"count": 5}},
    {"user": "carol", "ring": 5, "program": "compute", "args": {"n": 25}},
    {"user": "bob", "ring": 4, "program": "echo", "args": {"value": -3}},
]


class TestCallBoundaryEquivalence:
    @pytest.mark.parametrize("split", [1, 3, 5])
    def test_engine_resumes_bit_identically(self, split):
        straight = GateCallEngine()
        expected = [straight.run_job(dict(job)) for job in JOBS]

        prefix = GateCallEngine()
        for job in JOBS[:split]:
            prefix.run_job(dict(job))
        snap = snapshot_machine(
            prefix.machine, extra={"engine": prefix.bookkeeping()}
        )
        resumed = GateCallEngine.from_snapshot(snap)
        assert resumed.calls == prefix.calls
        assert resumed.total == prefix.total
        suffix = [resumed.run_job(dict(job)) for job in JOBS[split:]]
        assert suffix == expected[split:]
        assert resumed.total == straight.total
        assert resumed.calls == straight.calls
        assert (
            MetricsSnapshot.collect(resumed.machine.processor).architectural()
            == MetricsSnapshot.collect(
                straight.machine.processor
            ).architectural()
        )
