"""Unit tests for the Figure 3 storage formats."""

import pytest

from repro.errors import BracketOrderError, FieldRangeError
from repro.formats.indirect import IndirectWord
from repro.formats.instruction import (
    Instruction,
    TAG_IMMEDIATE,
    TAG_INDEX_A,
)
from repro.formats.pointerfmt import PackedPointer
from repro.formats.sdw import SDW


class TestSDW:
    def test_roundtrip_all_fields(self):
        sdw = SDW(
            addr=0o1234567,
            bound=0o400,
            r1=1,
            r2=3,
            r3=5,
            read=True,
            write=False,
            execute=True,
            gate=7,
            present=True,
            paged=True,
        )
        assert SDW.unpack(*sdw.pack()) == sdw

    def test_roundtrip_zero(self):
        sdw = SDW()
        assert SDW.unpack(*sdw.pack()) == sdw

    def test_missing_constructor(self):
        assert not SDW.missing().present

    def test_bracket_order_enforced(self):
        with pytest.raises(BracketOrderError):
            SDW(r1=3, r2=2, r3=4)

    def test_bracket_order_r2_r3(self):
        with pytest.raises(BracketOrderError):
            SDW(r1=1, r2=4, r3=3)

    def test_equal_brackets_allowed(self):
        sdw = SDW(r1=4, r2=4, r3=4)
        assert (sdw.r1, sdw.r2, sdw.r3) == (4, 4, 4)

    def test_addr_width(self):
        with pytest.raises(FieldRangeError):
            SDW(addr=1 << 24)

    def test_bound_width(self):
        with pytest.raises(FieldRangeError):
            SDW(bound=1 << 18)

    def test_gate_width(self):
        with pytest.raises(FieldRangeError):
            SDW(gate=1 << 14)

    def test_unpack_corrupt_brackets_raises(self):
        sdw = SDW(r1=2, r2=2, r3=2)
        w0, w1 = sdw.pack()
        # forge R1 = 5 > R2 = 2 in the packed image
        from repro.formats.sdw import SDW_W0

        w0 = SDW_W0["R1"].insert(w0, 5)
        with pytest.raises(BracketOrderError):
            SDW.unpack(w0, w1)

    def test_with_brackets(self):
        sdw = SDW(r1=0, r2=0, r3=0).with_brackets(1, 2, 3)
        assert (sdw.r1, sdw.r2, sdw.r3) == (1, 2, 3)

    def test_with_flags_partial(self):
        sdw = SDW(read=True).with_flags(write=True)
        assert sdw.read and sdw.write and not sdw.execute

    def test_describe_mentions_missing(self):
        assert "MISSING" in SDW.missing().describe()

    def test_describe_flags(self):
        text = SDW(read=True, execute=True).describe()
        assert "r-e" in text

    def test_pack_is_two_words(self):
        w0, w1 = SDW(addr=1, bound=2).pack()
        assert 0 <= w0 < 2**36 and 0 <= w1 < 2**36

    def test_distinct_images_for_distinct_brackets(self):
        a = SDW(r1=1, r2=1, r3=1).pack()
        b = SDW(r1=1, r2=1, r3=2).pack()
        assert a != b


class TestInstruction:
    def test_roundtrip_full(self):
        inst = Instruction(
            opcode=0o123,
            offset=0o654321,
            indirect=True,
            prflag=True,
            prnum=5,
            tag=TAG_INDEX_A,
        )
        assert Instruction.unpack(inst.pack()) == inst

    def test_roundtrip_minimal(self):
        inst = Instruction(opcode=0)
        assert Instruction.unpack(inst.pack()) == inst

    def test_immediate_property(self):
        assert Instruction(opcode=1, tag=TAG_IMMEDIATE).immediate
        assert not Instruction(opcode=1).immediate

    def test_indexed_property(self):
        assert Instruction(opcode=1, tag=TAG_INDEX_A).indexed

    def test_opcode_width(self):
        with pytest.raises(FieldRangeError):
            Instruction(opcode=1 << 9)

    def test_offset_width(self):
        with pytest.raises(FieldRangeError):
            Instruction(opcode=0, offset=1 << 18)

    def test_prnum_width(self):
        with pytest.raises(FieldRangeError):
            Instruction(opcode=0, prnum=8)

    def test_flags_independent(self):
        word = Instruction(opcode=1, indirect=True).pack()
        decoded = Instruction.unpack(word)
        assert decoded.indirect and not decoded.prflag


class TestIndirectWord:
    def test_roundtrip(self):
        ind = IndirectWord(segno=0o1234, wordno=0o654321, ring=5, indirect=True)
        assert IndirectWord.unpack(ind.pack()) == ind

    def test_ring_zero_default(self):
        assert IndirectWord(segno=1, wordno=2).ring == 0

    def test_segno_width(self):
        with pytest.raises(FieldRangeError):
            IndirectWord(segno=1 << 14, wordno=0)

    def test_wordno_width(self):
        with pytest.raises(FieldRangeError):
            IndirectWord(segno=0, wordno=1 << 18)

    def test_ring_width(self):
        with pytest.raises(FieldRangeError):
            IndirectWord(segno=0, wordno=0, ring=8)

    def test_with_ring(self):
        assert IndirectWord(segno=1, wordno=2).with_ring(6).ring == 6

    def test_chained(self):
        assert IndirectWord(segno=1, wordno=2).chained().indirect

    def test_fields_do_not_interfere(self):
        ind = IndirectWord.unpack(IndirectWord(segno=0, wordno=0, ring=7).pack())
        assert ind.segno == 0 and ind.wordno == 0 and ind.ring == 7


class TestPackedPointer:
    def test_roundtrip(self):
        ptr = PackedPointer(segno=9, wordno=100, ring=3)
        assert PackedPointer.unpack(ptr.pack()) == ptr

    def test_pointer_and_indirect_word_formats_coincide(self):
        """The paper: indirect words contain the same information as PRs."""
        ptr = PackedPointer(segno=9, wordno=100, ring=3)
        ind = IndirectWord.unpack(ptr.pack())
        assert (ind.segno, ind.wordno, ind.ring) == (9, 100, 3)
        assert not ind.indirect

    def test_as_indirect(self):
        ind = PackedPointer(segno=1, wordno=2, ring=3).as_indirect(chained=True)
        assert ind.indirect and ind.ring == 3

    def test_field_widths(self):
        with pytest.raises(FieldRangeError):
            PackedPointer(segno=1 << 14, wordno=0)
