"""Unit tests for the SDW associative memory."""

from repro.cpu.sdwcache import SDWCache
from repro.formats.sdw import SDW


def sdw(addr=0o100):
    return SDW(addr=addr, bound=10, read=True)


class TestSDWCache:
    def test_miss_then_hit(self):
        cache = SDWCache()
        assert cache.lookup(5) is None
        cache.fill(5, sdw())
        assert cache.lookup(5) == sdw()

    def test_counters(self):
        cache = SDWCache()
        cache.lookup(1)
        cache.fill(1, sdw())
        cache.lookup(1)
        assert cache.misses == 1 and cache.hits == 1

    def test_round_robin_eviction(self):
        cache = SDWCache(slots=2)
        cache.fill(1, sdw(0o100))
        cache.fill(2, sdw(0o200))
        cache.fill(3, sdw(0o300))  # evicts 1
        assert cache.lookup(1) is None
        assert cache.lookup(2) is not None
        assert cache.lookup(3) is not None

    def test_refill_same_segno_does_not_evict(self):
        cache = SDWCache(slots=2)
        cache.fill(1, sdw(0o100))
        cache.fill(2, sdw(0o200))
        cache.fill(1, sdw(0o300))  # update, not insert
        assert cache.lookup(2) is not None
        assert cache.lookup(1).addr == 0o300

    def test_invalidate_single(self):
        cache = SDWCache()
        cache.fill(1, sdw())
        cache.fill(2, sdw())
        cache.invalidate(1)
        assert cache.lookup(1) is None
        assert cache.lookup(2) is not None

    def test_invalidate_all(self):
        cache = SDWCache()
        cache.fill(1, sdw())
        cache.fill(2, sdw())
        cache.invalidate()
        assert cache.lookup(1) is None and cache.lookup(2) is None

    def test_invalidate_absent_segno_is_noop(self):
        cache = SDWCache()
        cache.fill(1, sdw())
        cache.invalidate(9)
        assert cache.lookup(1) is not None

    def test_disabled_cache_always_misses(self):
        cache = SDWCache(enabled=False)
        cache.fill(1, sdw())
        assert cache.lookup(1) is None
        assert cache.hits == 0

    def test_stats(self):
        cache = SDWCache()
        cache.lookup(1)
        cache.invalidate()
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["invalidations"] == 1
