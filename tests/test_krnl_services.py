"""The standard supervisor gate services (repro.krnl.services)."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


def run_caller(machine, body, ring=4, acl=None, links=""):
    user = machine.users.lookup("u") if "u" in machine.users else machine.add_user("u")
    name = f"prog{len(machine.supervisor.active)}"
    machine.store_program(
        f">t>{name}",
        f"""
        .seg    {name}
main::  {body}
        halt
{links}
""",
        acl=acl or (USER_ACL if ring == 4 else
                    [AclEntry("*", RingBracketSpec.procedure(
                        ring, callable_from=max(ring, 5)))]),
    )
    process = machine.login(user)
    machine.initiate(process, f">t>{name}")
    return machine.run(process, f"{name}$main", ring=ring)


class TestWriteGate:
    def test_writes_a_to_console(self, machine):
        result = run_caller(
            machine,
            """lda     =99
        eap4    back
        call    l_w,*
back:   nop""",
            links="l_w: .its svc$write",
        )
        assert result.console == [99]

    def test_console_records_ring_zero(self, machine):
        run_caller(
            machine,
            """lda     =1
        eap4    back
        call    l_w,*
back:   nop""",
            links="l_w: .its svc$write",
        )
        assert machine.supervisor.console[0].ring == 0


class TestWritecGate:
    def test_character_stream(self, machine):
        result = run_caller(
            machine,
            """lda     =72            ; 'H'
        eap4    b1
        call    l_w,*
b1:     lda     =73            ; 'I'
        eap4    b2
        call    l_w,*
b2:     nop""",
            links="l_w: .its svc$writec",
        )
        assert machine.supervisor.console_text() == "HI"


class TestClockGate:
    def test_clock_returns_cycles(self, machine):
        result = run_caller(
            machine,
            """eap4    back
        call    l_c,*
back:   nop""",
            links="l_c: .its svc$clock",
        )
        assert 0 < result.a <= result.cycles


class TestGetringGate:
    @pytest.mark.parametrize("ring", [1, 2, 3, 4, 5])
    def test_reports_caller_ring(self, ring):
        machine = Machine()
        result = run_caller(
            machine,
            """eap4    back
        call    l_g,*
back:   nop""",
            ring=ring,
            links="l_g: .its svc$getring",
        )
        assert result.a == ring


class TestGateExtensionPolicy:
    @pytest.mark.parametrize("ring", [6, 7])
    def test_rings_6_and_7_denied(self, ring):
        """Paper p. 35: rings 6-7 get no supervisor gates."""
        machine = Machine()
        with pytest.raises(Fault) as excinfo:
            run_caller(
                machine,
                """eap4    back
        call    l_w,*
back:   nop""",
                ring=ring,
                acl=[AclEntry("*", RingBracketSpec.procedure(ring))],
                links="l_w: .its svc$write",
            )
        assert excinfo.value.code is FaultCode.ACV_OUTSIDE_CALL_BRACKET

    def test_all_five_gates_exported(self, machine):
        svc = machine.supervisor.resolve_name("svc")
        assert set(svc.image.entries) >= {
            "write",
            "getring",
            "bump",
            "clock",
            "writec",
        }
        assert svc.image.gate_count == 6

    def test_gate_bodies_not_directly_callable(self, machine):
        """Words past the gate list (the service bodies) are not valid
        CALL targets, even though they are in the same segment."""
        with pytest.raises(Fault) as excinfo:
            run_caller(
                machine,
                """eap4    back
        call    l_body,*
back:   nop""",
                links="l_body: .its svc$write+6",  # deep inside the bodies
            )
        assert excinfo.value.code is FaultCode.ACV_NOT_GATE


class TestAsciiDirective:
    def test_string_printing_program(self, machine):
        """A program walks an .ascii string and prints it char by char."""
        user = machine.add_user("u")
        machine.store_program(
            ">t>hello",
            """
        .seg    hello
        .equ    len, 5
main::  ldq     =0             ; index
loop:   lda     msg,x          ; needs index in A low: use Q->A dance
        halt
msg:    .ascii  "HELLO"
""",
            acl=USER_ACL,
        )
        # simpler check: the .ascii words are the character codes
        active = machine.supervisor.activate(">t>hello")
        msg_at = active.image.words[3:8]
        assert msg_at == [ord(c) for c in "HELLO"]
