"""Gateway crash recovery end to end.

Two recovery paths are pinned:

* **worker death under load** — SIGKILL a process-pool worker while a
  loadgen run is in flight; the gateway must rebuild the pool, retry
  the interrupted calls, drop nothing it accepted, and still pass the
  worker cross-check (with the replayed history accounted for through
  the per-incarnation baseline);
* **whole-gateway restart** — stop a durable gateway, start a fresh one
  on the same durability directory; the new workers must resume the old
  machine state, and the journals must replay verified across both
  generations.
"""

import asyncio
import os
import signal

import pytest

from repro.serve.admission import RingPolicy
from repro.serve.gateway import GatewayConfig, RingGateway
from repro.serve.loadgen import run_load
from repro.state.recover import JOURNAL_NAME, recover_slot, replay_journal


def gateway_config(**overrides):
    defaults = dict(
        port=0,
        workers=1,
        backend="thread",
        call_timeout=60.0,
        drain_timeout=60.0,
        default_policy=RingPolicy(rate=None, max_pending=64),
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def run(coro):
    return asyncio.run(coro)


async def with_gateway(config, body):
    gateway = RingGateway(config)
    await gateway.start()
    try:
        return await body(gateway)
    finally:
        await gateway.stop()


def slot_dirs(durability_dir):
    root = durability_dir / "slots"
    return sorted(p for p in root.iterdir() if p.name.startswith("slot-"))


class TestWorkerDeathUnderLoad:
    def test_sigkill_mid_load_drops_nothing(self, tmp_path):
        config = gateway_config(
            workers=2,
            backend="process",
            durability_dir=str(tmp_path),
            checkpoint_interval=8,
            fsync_every=1,
        )

        async def body(gateway):
            if not gateway.pool.backend.startswith("process"):
                pytest.skip("process pool unavailable in this environment")

            async def assassin():
                # kill only once the burst is demonstrably mid-flight:
                # some calls done, most still to come (a wall-clock
                # delay races the load on a busy host)
                while gateway.counters.completed < 20:
                    await asyncio.sleep(0.02)
                victim = list(gateway.pool.executor._processes)[0]
                os.kill(victim, signal.SIGKILL)

            kill_task = asyncio.create_task(assassin())
            report = await run_load(
                "127.0.0.1",
                gateway.port,
                sessions=4,
                calls=40,
                args={"n": 30000},
                program="compute",
            )
            await kill_task
            return report

        report = run(with_gateway(config, body))
        assert report.check() == [], report.check()
        # every accepted call was answered: nothing dropped
        assert report.ok == report.sessions * report.calls_per_session
        gateway_stats = report.stats["gateway"]
        assert gateway_stats["recoveries"] >= 1
        assert gateway_stats["retried_calls"] >= 1
        # the cross-check still balances: replayed history is baselined
        assert report.stats["consistent"] is True
        per_worker = report.stats["workers"]["per_worker"]
        assert any(
            info.get("generation", 1) > 1 for info in per_worker.values()
        )

    def test_sigkill_without_durability_still_recovers_pool(self, tmp_path):
        config = gateway_config(workers=2, backend="process")

        async def body(gateway):
            if not gateway.pool.backend.startswith("process"):
                pytest.skip("process pool unavailable in this environment")

            async def assassin():
                # kill only once the burst is demonstrably mid-flight:
                # some calls done, most still to come (a wall-clock
                # delay races the load on a busy host)
                while gateway.counters.completed < 20:
                    await asyncio.sleep(0.02)
                victim = list(gateway.pool.executor._processes)[0]
                os.kill(victim, signal.SIGKILL)

            kill_task = asyncio.create_task(assassin())
            report = await run_load(
                "127.0.0.1",
                gateway.port,
                sessions=4,
                calls=40,
                args={"n": 30000},
                program="compute",
            )
            await kill_task
            return report

        report = run(with_gateway(config, body))
        # without a journal the interrupted calls re-execute from
        # scratch on fresh machines, so the client still loses nothing
        assert report.ok == report.sessions * report.calls_per_session
        assert report.stats["gateway"]["recoveries"] >= 1


class TestGatewayRestart:
    def test_restart_resumes_worker_state(self, tmp_path):
        config = gateway_config(
            workers=1,
            durability_dir=str(tmp_path),
            checkpoint_interval=4,
            fsync_every=1,
        )

        async def first(gateway):
            report = await run_load(
                "127.0.0.1", gateway.port, sessions=2, calls=6
            )
            assert report.check() == []
            return report.stats["workers"]["per_worker"]

        async def second(gateway):
            report = await run_load(
                "127.0.0.1", gateway.port, sessions=2, calls=6
            )
            assert report.check() == []
            return report.stats["workers"]["per_worker"]

        before = run(with_gateway(config, first))
        after = run(with_gateway(config, second))
        (worker_before,) = before.values()
        (worker_after,) = after.values()
        assert worker_after["generation"] == worker_before["generation"] + 1
        # the second gateway's workers report the full history: their
        # own 12 calls plus the 12 replayed from the first incarnation
        assert worker_after["worker_reported_calls"] == (
            worker_before["worker_reported_calls"] + worker_after["calls"]
        )
        assert worker_after["baseline_calls"] == (
            worker_before["worker_reported_calls"]
        )
        assert worker_after["consistent"] is True

    def test_journals_replay_verified_across_restart(self, tmp_path):
        config = gateway_config(
            workers=1,
            durability_dir=str(tmp_path),
            checkpoint_interval=4,
            fsync_every=1,
        )

        async def body(gateway):
            report = await run_load(
                "127.0.0.1", gateway.port, sessions=2, calls=5
            )
            assert report.check() == []

        run(with_gateway(config, body))
        run(with_gateway(config, body))

        (slot_dir,) = slot_dirs(tmp_path)
        journal = slot_dir / JOURNAL_NAME
        report = replay_journal(str(journal), verify=True)
        assert report.replayed == 20
        assert report.verified == 20
        recovery = recover_slot(str(slot_dir), verify=True)
        assert recovery.engine.calls == 20
        assert (slot_dir / "generation").read_text().strip() == "2"
