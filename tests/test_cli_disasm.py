"""The CLI and the disassembler."""

import pytest

from repro.asm import assemble
from repro.asm.disasm import disassemble_image, disassemble_word
from repro.cli import main
from repro.cpu.isa import Op
from repro.formats.instruction import Instruction

from tests.helpers import asm_inst

SAMPLE = """
        .seg    sample
        .gates  1
main::  lda     =42
        eap4    back
        call    l_write,*
back:   halt
l_write: .its   svc$write
"""


class TestDisassembler:
    def test_immediate(self):
        assert disassemble_word(asm_inst(Op.LDA, offset=5, immediate=True)) == "lda     =5"

    def test_pr_relative_indirect(self):
        text = disassemble_word(asm_inst(Op.STA, offset=3, pr=2, indirect=True))
        assert text == "sta     pr2|3,*"

    def test_indexed(self):
        text = disassemble_word(asm_inst(Op.LDQ, offset=7, indexed=True))
        assert text == "ldq     7,x"

    def test_no_operand(self):
        assert disassemble_word(asm_inst(Op.HALT)) == "halt"

    def test_unknown_opcode_as_word(self):
        assert disassemble_word(0o777 << 27).startswith(".word")

    def test_data_word_as_word(self):
        # opcode field 0 = NOP but stray operand bits -> .word
        assert disassemble_word(12345).startswith(".word")

    def test_roundtrip_through_assembler(self):
        """Disassembling an assembled program and reassembling the
        instruction lines yields the same words."""
        image = assemble(
            """
        lda     =1
        sta     pr6|2
        tra     0
        halt
"""
        )
        for word in image.words:
            line = "        " + disassemble_word(word)
            reassembled = assemble(line + "\n")
            assert reassembled.words == [word]

    def test_image_disassembly_labels_entries(self):
        image = assemble(SAMPLE)
        text = disassemble_image(image)
        assert "main" in text
        assert "; gate" in text
        assert "call" in text


class TestCLI:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 9" in out

    def test_figures_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "figures.txt"
        assert main(["figures", "--out", str(out_path)]) == 0
        assert "Figure 9" in out_path.read_text()

    def test_asm_command(self, tmp_path, capsys):
        src = tmp_path / "p.asm"
        src.write_text(SAMPLE)
        assert main(["asm", str(src)]) == 0
        out = capsys.readouterr().out
        assert "sample" in out and "entries:" in out

    def test_asm_disasm_flag(self, tmp_path, capsys):
        src = tmp_path / "p.asm"
        src.write_text(SAMPLE)
        assert main(["asm", str(src), "--disasm"]) == 0
        assert "lda     =42" in capsys.readouterr().out

    def test_run_command(self, tmp_path, capsys):
        src = tmp_path / "p.asm"
        src.write_text(SAMPLE)
        assert main(["run", str(src)]) == 0
        out = capsys.readouterr().out
        assert "halted:         True" in out
        assert "console:        [42]" in out

    def test_run_missing_file(self, capsys):
        assert main(["run", "/no/such/file.asm"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_asm_bad_source(self, tmp_path, capsys):
        src = tmp_path / "bad.asm"
        src.write_text("        frobnicate 1\n")
        assert main(["asm", str(src)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_run_with_trace(self, tmp_path, capsys):
        src = tmp_path / "p.asm"
        src.write_text(SAMPLE)
        assert main(["run", str(src), "--trace"]) == 0
        out = capsys.readouterr().out
        assert "CALL" in out and "RETURN" in out

    def test_run_metrics_json_to_stdout(self, tmp_path, capsys):
        import json

        src = tmp_path / "p.asm"
        src.write_text(SAMPLE)
        assert main(["run", str(src), "--metrics-json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["halted"] is True
        assert payload["a"] == 42
        assert payload["instructions"] > 0
        # The full snapshot: every counter plus derived hit rates.
        for key in (
            "cycles",
            "ring_crossings",
            "sdw_hit_rate",
            "ptlb_hit_rate",
            "icache_hit_rate",
            "block_hit_rate",
            "block_invalidations",
        ):
            assert key in payload

    def test_run_metrics_json_to_file(self, tmp_path, capsys):
        import json

        src = tmp_path / "p.asm"
        src.write_text(SAMPLE)
        out_path = tmp_path / "metrics.json"
        assert main(["run", str(src), "--metrics-json", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["halted"] is True and payload["ring"] == 4
