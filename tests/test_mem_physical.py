"""Unit tests for physical memory and its allocator."""

import pytest

from repro.errors import ConfigurationError, SegmentBoundsError
from repro.mem.physical import Allocation, PhysicalMemory


class TestWordAccess:
    def test_read_back_written_word(self, memory):
        memory.write(100, 0o123)
        assert memory.read(100) == 0o123

    def test_write_truncates_to_word(self, memory):
        memory.write(0, 1 << 40)
        assert memory.read(0) == ((1 << 40) & (2**36 - 1))

    def test_initially_zero(self, memory):
        assert memory.read(12345) == 0

    def test_read_out_of_range(self, memory):
        with pytest.raises(SegmentBoundsError):
            memory.read(memory.size)

    def test_write_out_of_range(self, memory):
        with pytest.raises(SegmentBoundsError):
            memory.write(-1, 0)

    def test_counters_track_traffic(self, memory):
        memory.write(0, 1)
        memory.read(0)
        memory.read(0)
        assert memory.writes == 1
        assert memory.reads == 2

    def test_reset_counters(self, memory):
        memory.read(0)
        memory.reset_counters()
        assert memory.reads == 0 and memory.writes == 0


class TestBlockAccess:
    def test_block_roundtrip(self, memory):
        memory.write_block(50, [1, 2, 3])
        assert memory.read_block(50, 3) == [1, 2, 3]

    def test_block_counts_each_word(self, memory):
        memory.write_block(0, [1, 2, 3])
        memory.read_block(0, 3)
        assert memory.writes == 3 and memory.reads == 3

    def test_block_bounds(self, memory):
        with pytest.raises(SegmentBoundsError):
            memory.read_block(memory.size - 1, 2)

    def test_load_image_uncounted(self, memory):
        memory.load_image(10, [7, 8, 9])
        assert memory.writes == 0
        assert memory.peek_block(10, 3) == [7, 8, 9]

    def test_snapshot_uncounted(self, memory):
        memory.peek_block(0, 100)
        assert memory.reads == 0


class TestAllocator:
    def test_allocations_do_not_overlap(self, memory):
        a = memory.allocate(100)
        b = memory.allocate(200)
        assert a.end <= b.addr or b.end <= a.addr

    def test_allocation_size(self, memory):
        assert memory.allocate(64).size == 64

    def test_zero_size_allocation_is_legal(self, memory):
        a = memory.allocate(0)
        assert a.size == 0

    def test_exhaustion_raises(self):
        small = PhysicalMemory(64)
        small.allocate(60)
        with pytest.raises(ConfigurationError):
            small.allocate(10)

    def test_negative_size_rejected(self, memory):
        with pytest.raises(ConfigurationError):
            memory.allocate(-1)

    def test_free_allows_reuse(self):
        small = PhysicalMemory(64)
        a = small.allocate(60)
        small.free(a)
        b = small.allocate(60)
        assert b.addr == a.addr

    def test_free_coalesces_neighbours(self):
        small = PhysicalMemory(64)
        a = small.allocate(30)
        b = small.allocate(30)
        small.free(a)
        small.free(b)
        assert small.allocate(60).size == 60

    def test_free_words_accounting(self, memory):
        before = memory.free_words()
        memory.allocate(100)
        assert memory.free_words() == before - 100

    def test_occupancy(self):
        small = PhysicalMemory(100)
        small.allocate(50)
        assert abs(small.occupancy() - 0.5) < 1e-9

    def test_size_limits(self):
        with pytest.raises(ConfigurationError):
            PhysicalMemory(0)
        with pytest.raises(ConfigurationError):
            PhysicalMemory((1 << 24) + 1)
