"""Slot recovery and verified replay over real worker journals."""

import json
from pathlib import Path
from zlib import crc32

import pytest

import repro.serve.workers as workers
from repro.errors import JournalError, ReplayDivergenceError
from repro.serve.workers import DurabilityConfig, _WorkerState
from repro.state.journal import MAGIC, _FRAME, read_journal
from repro.state.recover import JOURNAL_NAME, recover_slot, replay_journal


@pytest.fixture
def durable_worker(tmp_path):
    """A fresh worker bound to slot 0 under ``tmp_path``; restores the
    module's durability global afterwards."""

    def build(checkpoint_interval=4, fsync_every=1):
        config = DurabilityConfig(
            dir=str(tmp_path),
            slots=2,
            checkpoint_interval=checkpoint_interval,
            fsync_every=fsync_every,
        )
        workers.configure_durability(config)
        return _WorkerState()

    yield build
    workers.configure_durability(None)
    workers.release_live_slots()


def job(i, call_id=None, **overrides):
    base = {
        "user": "alice",
        "ring": 4,
        "program": "call_loop",
        "args": {"count": 1 + i % 3},
        "call_id": call_id or f"call-{i}",
    }
    base.update(overrides)
    return base


def crash(state):
    """Abandon a worker as a crash would: journal synced (the calls were
    acknowledged), claim released (the pid is gone)."""
    state.journal.sync()
    (Path(state.slot_dir) / "claim").unlink()
    workers.release_live_slots()


class TestSlotRecovery:
    def test_snapshot_plus_replay_resumes_totals(self, durable_worker, tmp_path):
        state = durable_worker(checkpoint_interval=4)
        for i in range(10):  # 2 checkpoints + a 2-call journal tail
            state.execute(job(i))
        crash(state)

        successor = durable_worker()
        assert successor.slot == 0
        assert successor.generation == state.generation + 1
        assert successor.engine.calls == state.engine.calls
        assert successor.engine.total == state.engine.total

    def test_recover_slot_reports_source_and_replay(self, durable_worker, tmp_path):
        state = durable_worker(checkpoint_interval=4)
        for i in range(6):
            state.execute(job(i))
        state.journal.sync()
        recovery = recover_slot(str(tmp_path / "slots" / "slot-0"))
        assert recovery.snapshot_source == "current"
        assert recovery.snapshot_seq == 4
        assert recovery.replayed == 2
        assert recovery.last_seq == 6
        assert recovery.engine.total == state.engine.total

    def test_previous_snapshot_is_the_fallback(self, durable_worker, tmp_path):
        state = durable_worker(checkpoint_interval=2)
        slot_dir = tmp_path / "slots" / "slot-0"
        for i in range(6):  # checkpoints at 2, 4, 6
            state.execute(job(i))
        state.journal.sync()
        (slot_dir / "snapshot.json").write_text("garbage")
        recovery = recover_slot(str(slot_dir))
        assert recovery.snapshot_source == "prev"
        assert recovery.snapshot_seq == 4
        assert recovery.replayed == 2
        assert recovery.engine.total == state.engine.total

    def test_no_snapshot_replays_everything(self, durable_worker, tmp_path):
        state = durable_worker(checkpoint_interval=100)  # never checkpoints
        slot_dir = tmp_path / "slots" / "slot-0"
        for i in range(5):
            state.execute(job(i))
        state.journal.sync()
        recovery = recover_slot(str(slot_dir))
        assert recovery.snapshot_source == "none"
        assert recovery.replayed == 5
        assert recovery.engine.total == state.engine.total

    def test_duplicate_call_id_answers_from_journal(self, durable_worker, tmp_path):
        state = durable_worker()
        first = state.execute(job(0, call_id="dup"))
        calls_after = state.engine.calls
        crash(state)

        successor = durable_worker()
        again = successor.execute(job(0, call_id="dup"))
        assert again["deduplicated"] is True
        assert again["payload"] == first["payload"]
        assert again["metrics"] == first["metrics"]
        assert successor.engine.calls == calls_after  # not re-executed

    def test_errored_calls_are_journaled_and_replayed(self, durable_worker, tmp_path):
        state = durable_worker()
        state.execute(job(0))
        bad = state.execute(job(1, program="no_such_program"))
        assert "error" in bad
        state.execute(job(2))
        crash(state)

        successor = durable_worker()
        assert successor.engine.calls == 2  # errors don't count as calls
        assert successor.engine.total == state.engine.total
        journal = tmp_path / "slots" / "slot-0" / JOURNAL_NAME
        recorded = [r["result"] for r in read_journal(str(journal))]
        assert "error" in recorded[1]


class TestVerifiedReplay:
    def build_journal(self, durable_worker, tmp_path, n=5):
        state = durable_worker(checkpoint_interval=100)
        for i in range(n):
            state.execute(job(i))
        state.journal.sync()
        return tmp_path / "slots" / "slot-0" / JOURNAL_NAME

    def test_clean_journal_verifies(self, durable_worker, tmp_path):
        journal = self.build_journal(durable_worker, tmp_path)
        report = replay_journal(str(journal), verify=True)
        assert report.verified == report.replayed == 5

    def test_tampered_payload_with_valid_crc_diverges(
        self, durable_worker, tmp_path
    ):
        journal = self.build_journal(durable_worker, tmp_path)
        data = journal.read_bytes()
        offset = len(MAGIC)
        records = []
        while offset < len(data):
            length, _ = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            records.append(json.loads(data[start : start + length]))
            offset = start + length
        # forge record 3: lie about the A register, re-frame with a
        # correct CRC so only the replay cross-check can catch it
        records[2]["result"]["payload"]["a"] += 1
        forged = MAGIC
        for record in records:
            payload = json.dumps(
                record, sort_keys=True, separators=(",", ":")
            ).encode()
            forged += _FRAME.pack(len(payload), crc32(payload)) + payload
        journal.write_bytes(forged)

        report = replay_journal(str(journal))  # structurally fine
        assert report.replayed == 5
        with pytest.raises(ReplayDivergenceError) as excinfo:
            replay_journal(str(journal), verify=True)
        assert excinfo.value.seq == 3
        assert excinfo.value.field == "payload"

    def test_flipped_crc_byte_raises_journal_error(
        self, durable_worker, tmp_path
    ):
        journal = self.build_journal(durable_worker, tmp_path)
        data = bytearray(journal.read_bytes())
        data[len(MAGIC) + _FRAME.size + 1] ^= 0xFF
        journal.write_bytes(bytes(data))
        with pytest.raises(JournalError):
            replay_journal(str(journal), verify=True)

    def test_truncated_record_fails_strict_verification(
        self, durable_worker, tmp_path
    ):
        journal = self.build_journal(durable_worker, tmp_path)
        journal.write_bytes(journal.read_bytes()[:-4])
        report = replay_journal(str(journal), verify=True)  # tail dropped
        assert report.replayed == 4
        with pytest.raises(JournalError):
            replay_journal(str(journal), verify=True, strict=True)
