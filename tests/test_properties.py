"""Property-based tests (hypothesis) for the core invariants.

These pin the properties the paper's security argument rests on:

* nested-subset monotonicity of read/write capabilities;
* the effective ring is monotone, exceeds the current ring, and equals
  the maximum over all influences;
* SDW/instruction/indirect encodings are lossless bijections;
* CALL never raises the ring and always lands in the execute bracket;
* RETURN never drops below the caller's ring;
* the live machine maintains ``PRn.RING >= IPR.RING`` across random
  instruction sequences.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.effective import effective_ring_of_chain
from repro.core.gates import CallOutcome, decide_call, decide_return
from repro.core.rings import RingBrackets, check_read, check_write, permission_table
from repro.formats.indirect import IndirectWord
from repro.formats.instruction import Instruction
from repro.formats.sdw import SDW

rings = st.integers(min_value=0, max_value=7)
bools = st.booleans()


@st.composite
def brackets(draw):
    triple = sorted(draw(st.tuples(rings, rings, rings)))
    return RingBrackets(*triple)


@st.composite
def sdws(draw):
    b = draw(brackets())
    return SDW(
        addr=draw(st.integers(0, (1 << 24) - 1)),
        bound=draw(st.integers(0, (1 << 18) - 1)),
        r1=b.r1,
        r2=b.r2,
        r3=b.r3,
        read=draw(bools),
        write=draw(bools),
        execute=draw(bools),
        gate=draw(st.integers(0, (1 << 14) - 1)),
        present=draw(bools),
        paged=draw(bools),
    )


class TestEncodingRoundtrips:
    @given(sdws())
    def test_sdw_pack_unpack_identity(self, sdw):
        assert SDW.unpack(*sdw.pack()) == sdw

    @given(
        st.integers(0, 511),
        st.integers(0, (1 << 18) - 1),
        bools,
        bools,
        st.integers(0, 7),
        st.integers(0, 15),
    )
    def test_instruction_roundtrip(self, opcode, offset, ind, prflag, prnum, tag):
        inst = Instruction(
            opcode=opcode,
            offset=offset,
            indirect=ind,
            prflag=prflag,
            prnum=prnum,
            tag=tag,
        )
        assert Instruction.unpack(inst.pack()) == inst

    @given(st.integers(0, (1 << 14) - 1), st.integers(0, (1 << 18) - 1), rings, bools)
    def test_indirect_roundtrip(self, segno, wordno, ring, chained):
        ind = IndirectWord(segno=segno, wordno=wordno, ring=ring, indirect=chained)
        assert IndirectWord.unpack(ind.pack()) == ind

    @given(sdws())
    def test_distinct_sdws_distinct_images(self, sdw):
        """pack is injective over the flag bits (spot-check via flips)."""
        flipped = sdw.with_flags(read=not sdw.read)
        assert flipped.pack() != sdw.pack()


class TestNestedSubset:
    @given(brackets(), bools, bools)
    def test_read_write_monotone(self, b, rflag, wflag):
        """Ring m's read/write capability implies ring n's for n < m."""
        for m in range(8):
            for n in range(m):
                if check_read(m, b, rflag):
                    assert check_read(n, b, rflag)
                if check_write(m, b, wflag):
                    assert check_write(n, b, wflag)

    @given(brackets(), bools, bools, bools)
    def test_write_implies_read_bracket(self, b, rflag, wflag, eflag):
        """The write bracket is always inside the read bracket."""
        table = permission_table(b, rflag and True, wflag and True, eflag)
        for row in table:
            if row["write"] and rflag:
                assert check_read(row["ring"], b, rflag)


class TestEffectiveRing:
    chain = st.lists(st.tuples(rings, rings), max_size=8)

    @given(rings, st.one_of(st.none(), rings), chain)
    def test_at_least_current_ring(self, cur, pr, chain):
        assert effective_ring_of_chain(cur, pr, chain) >= cur

    @given(rings, st.one_of(st.none(), rings), chain)
    def test_equals_max_of_influences(self, cur, pr, chain):
        influences = [cur]
        if pr is not None:
            influences.append(pr)
        influences.extend(itertools.chain.from_iterable(chain))
        assert effective_ring_of_chain(cur, pr, chain) == max(influences)

    @given(rings, st.one_of(st.none(), rings), chain, st.tuples(rings, rings))
    def test_monotone_in_chain_extension(self, cur, pr, chain, extra):
        base = effective_ring_of_chain(cur, pr, chain)
        extended = effective_ring_of_chain(cur, pr, list(chain) + [extra])
        assert extended >= base


class TestCallReturnDecisions:
    @given(rings, rings, brackets(), bools, st.integers(0, 100), st.integers(0, 50), bools)
    def test_call_decision_is_total(self, eff, cur, b, eflag, wordno, gates, same):
        decision = decide_call(eff, cur, b, eflag, wordno, gates, same)
        assert decision.outcome is not None
        if decision.proceeds:
            assert decision.new_ring is not None

    @given(rings, brackets(), bools, st.integers(0, 100), st.integers(0, 50), bools)
    def test_call_never_raises_ring(self, eff, b, eflag, wordno, gates, same):
        decision = decide_call(eff, eff, b, eflag, wordno, gates, same)
        if decision.proceeds:
            assert decision.new_ring <= eff

    @given(rings, brackets(), bools, st.integers(0, 100), st.integers(0, 50), bools)
    def test_call_lands_in_execute_bracket(self, eff, b, eflag, wordno, gates, same):
        decision = decide_call(eff, eff, b, eflag, wordno, gates, same)
        if decision.proceeds:
            assert b.execute_allowed(decision.new_ring)

    @given(rings, rings, brackets(), bools, st.integers(0, 100), st.integers(0, 50))
    def test_call_with_raised_ring_never_proceeds(
        self, eff, cur, b, eflag, wordno, gates
    ):
        """The p. 30 rule: eff > cur is always refused."""
        if eff > cur:
            decision = decide_call(eff, cur, b, eflag, wordno, gates, False)
            assert not decision.proceeds

    @given(rings, rings, brackets(), bools)
    def test_return_never_below_caller(self, eff, cur, b, eflag):
        decision = decide_return(eff, cur, b, eflag)
        if decision.proceeds:
            assert decision.new_ring >= cur

    @given(rings, rings, brackets())
    def test_return_lands_in_execute_bracket(self, eff, cur, b):
        decision = decide_return(eff, cur, b, True)
        if decision.proceeds:
            assert b.execute_allowed(decision.new_ring)

    @given(rings, brackets(), st.integers(0, 50), bools)
    def test_gateless_segment_rejects_intersegment_calls(self, eff, b, wordno, eflag):
        decision = decide_call(eff, eff, b, eflag, wordno, 0, False)
        assert decision.outcome in (
            CallOutcome.FAULT_NOT_GATE,
            CallOutcome.FAULT_NO_EXECUTE,
            CallOutcome.FAULT_OUTSIDE_BRACKET,
        )


class TestMachineInvariant:
    """Random programs can never break PRn.RING >= IPR.RING."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["eap", "call", "return", "lda", "spr"]),
                st.integers(0, 7),   # pr selector / target variance
                rings,               # a ring to poke into pointers
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_pr_ring_invariant_over_random_sequences(self, script):
        from repro.cpu.isa import Op
        from repro.errors import MachineHalted
        from repro.cpu.faults import Fault

        from tests.helpers import BareMachine, asm_inst, halt_word, ind_word

        bm = BareMachine()
        for ring in range(8):
            bm.add_segment(
                ring, size=32, r1=ring, r2=ring, r3=ring,
                read=True, write=True, execute=False,
            )
        # a gated ring-0 segment and a ring-4 main segment
        bm.add_code(9, [asm_inst(Op.RETURN, offset=0, pr=4)], ring=0, r3=5, gate=1)
        words = []
        for kind, sel, ring in script:
            if kind == "eap":
                words.append(asm_inst(Op.EAP0.__class__["EAP%d" % (sel % 8)], offset=sel))
            elif kind == "lda":
                words.append(asm_inst(Op.LDA, offset=sel, immediate=True))
            elif kind == "spr":
                words.append(asm_inst(Op.SPR1, offset=1, pr=0))
            elif kind == "call":
                words.append(asm_inst(Op.CALL, offset=30, indirect=True))
            else:
                words.append(asm_inst(Op.RETURN, offset=0, pr=4))
        words.append(halt_word())
        while len(words) < 30:
            words.append(halt_word())
        words.append(ind_word(9, 0))  # word 30: link to the gate
        bm.add_code(8, words, ring=4)
        bm.start(8, 0, ring=4)
        bm.regs.pr(4).load(8, len(script), 4)  # plausible return pointer
        for _ in range(200):
            try:
                bm.step()
            except (MachineHalted, Fault):
                break
            assert bm.regs.check_ring_invariant()
