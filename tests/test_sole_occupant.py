"""The sole-occupant rule for protected-subsystem rings (pp. 37-38)."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.errors import AccessDenied
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

SUBSYS = """
        .seg    NAME
        .gates  1
entry:: return  pr4|0
"""


def store_subsystem(machine, path, name, owner, ring=2):
    machine.store_program(
        path,
        SUBSYS.replace("NAME", name),
        owner=owner,
        acl=[AclEntry("*", RingBracketSpec.procedure(ring, callable_from=5))],
    )


@pytest.fixture
def world(machine):
    vendor_a = machine.add_user("vendor_a")
    vendor_b = machine.add_user("vendor_b")
    customer = machine.add_user("customer")
    store_subsystem(machine, ">subs>alpha", "alpha", vendor_a, ring=2)
    store_subsystem(machine, ">subs>beta", "beta", vendor_b, ring=2)
    store_subsystem(machine, ">subs>gamma", "gamma", vendor_b, ring=3)
    store_subsystem(machine, ">subs>alpha2", "alpha2", vendor_a, ring=2)
    return machine, vendor_a, vendor_b, customer


class TestSoleOccupant:
    def test_two_vendors_cannot_share_one_ring(self, world):
        machine, vendor_a, vendor_b, customer = world
        process = machine.login(customer)
        machine.initiate(process, ">subs>alpha")
        with pytest.raises(AccessDenied) as excinfo:
            machine.initiate(process, ">subs>beta")
        assert "sole-occupant" in str(excinfo.value)

    def test_same_vendor_may_add_more_segments(self, world):
        machine, vendor_a, vendor_b, customer = world
        process = machine.login(customer)
        machine.initiate(process, ">subs>alpha")
        machine.initiate(process, ">subs>alpha2")  # same owner: fine

    def test_different_rings_different_occupants(self, world):
        """Ring 2 for vendor A, ring 3 for vendor B — both coexist."""
        machine, vendor_a, vendor_b, customer = world
        process = machine.login(customer)
        machine.initiate(process, ">subs>alpha")   # ring 2, vendor A
        machine.initiate(process, ">subs>gamma")   # ring 3, vendor B
        assert machine.supervisor.ring_occupant(process, 2) == "vendor_a"
        assert machine.supervisor.ring_occupant(process, 3) == "vendor_b"

    def test_different_processes_different_occupants(self, world):
        """'A given ring may simultaneously protect different subsystems
        in different processes.'"""
        machine, vendor_a, vendor_b, customer = world
        other = machine.add_user("other")
        p1 = machine.login(customer)
        p2 = machine.login(other)
        machine.initiate(p1, ">subs>alpha")  # ring 2 <- vendor A
        machine.initiate(p2, ">subs>beta")   # ring 2 <- vendor B, other process
        assert machine.supervisor.ring_occupant(p1, 2) == "vendor_a"
        assert machine.supervisor.ring_occupant(p2, 2) == "vendor_b"

    def test_user_rings_unaffected(self, world):
        """Ring 4 code is not a protected subsystem; many owners mix."""
        machine, vendor_a, vendor_b, customer = world
        machine.store_program(
            ">udd>a>p1", SUBSYS.replace("NAME", "p1"), owner=vendor_a, acl=USER_ACL
        )
        machine.store_program(
            ">udd>b>p2", SUBSYS.replace("NAME", "p2"), owner=vendor_b, acl=USER_ACL
        )
        process = machine.login(customer)
        machine.initiate(process, ">udd>a>p1")
        machine.initiate(process, ">udd>b>p2")

    def test_occupancy_of_unclaimed_ring_is_none(self, world):
        machine, *_ , customer = world
        process = machine.login(customer)
        assert machine.supervisor.ring_occupant(process, 2) is None
