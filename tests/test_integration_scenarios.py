"""Integration tests: the scenarios of the paper's "Use of Rings" section.

Each test is a miniature of a use the paper describes — a protected
subsystem auditing access to sensitive data, debugging in ring 5, a
layered supervisor, grading student programs in ring 6 — running as
real machine code on the full system.
"""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.sim.machine import Machine

USER4 = [AclEntry("*", RingBracketSpec.procedure(4))]


class TestProtectedSubsystem:
    """User A shares a sensitive segment with user B, but only through
    A's audit program in ring 2 (paper pp. 9-10, 36-37)."""

    def _build(self, machine):
        alice = machine.add_user("alice")
        bob = machine.add_user("bob")
        # The sensitive data: readable/writable only in ring 2, and only
        # by alice's and bob's processes.
        machine.store_data(
            ">udd>alice>secrets",
            [1111, 2222, 3333, 0],
            owner=alice,
            acl=[AclEntry("*", RingBracketSpec.data(2))],
        )
        # The audit subsystem: executes in ring 2, gates callable from
        # rings 3-5; reads the secret, counts the access, returns it.
        machine.store_program(
            ">udd>alice>audit",
            """
        .seg    audit
        .gates  1
read::  aos     l_count,*      ; audit trail: count every access
        lda     l_secret,*     ; fetch the sensitive word
        return  pr4|0
l_count: .its   secrets+3
l_secret: .its  secrets
""",
            owner=alice,
            acl=[AclEntry("*", RingBracketSpec.procedure(2, callable_from=5))],
        )
        machine.store_program(
            ">udd>bob>reader",
            """
        .seg    reader
main::  eap4    back
        call    l_read,*
back:   halt
l_read: .its    audit$read
""",
            owner=bob,
            acl=USER4,
        )
        machine.store_program(
            ">udd>bob>thief",
            """
        .seg    thief
main::  lda     l_secret,*     ; bypass the audit gate
        halt
l_secret: .its  secrets
""",
            owner=bob,
            acl=USER4,
        )
        return alice, bob

    def test_access_through_audit_gate_works(self, machine):
        alice, bob = self._build(machine)
        process = machine.login(bob)
        machine.initiate(process, ">udd>bob>reader")
        result = machine.run(process, "reader$main", ring=4)
        assert result.halted
        assert result.a == 1111
        assert result.ring == 4

    def test_audit_trail_recorded(self, machine):
        alice, bob = self._build(machine)
        process = machine.login(bob)
        machine.initiate(process, ">udd>bob>reader")
        machine.run(process, "reader$main", ring=4)
        machine.run(process, "reader$main", ring=4)
        secrets = machine.supervisor.activate(">udd>alice>secrets")
        count = machine.memory.peek_block(secrets.placed.addr + 3, 1)[0]
        assert count == 2

    def test_direct_access_refused(self, machine):
        """B's ring-4 program cannot read the ring-2 data directly."""
        alice, bob = self._build(machine)
        process = machine.login(bob)
        machine.initiate(process, ">udd>bob>thief")
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "thief$main", ring=4)
        assert excinfo.value.code is FaultCode.ACV_READ_BRACKET

    def test_subsystem_protected_from_ring4_write(self, machine):
        """Ring 4 cannot patch the audit code either."""
        alice, bob = self._build(machine)
        patcher_src = """
        .seg    patcher
main::  lda     =0
        sta     l_audit,*
        halt
l_audit: .its   audit$read
"""
        machine.store_program(">udd>bob>patcher", patcher_src, owner=bob, acl=USER4)
        process = machine.login(bob)
        machine.initiate(process, ">udd>bob>patcher")
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "patcher$main", ring=4)
        assert excinfo.value.code is FaultCode.ACV_NO_WRITE


class TestDebugRing5:
    """Running an untested program in ring 5 confines its damage
    (paper p. 37)."""

    def _build(self, machine):
        user = machine.add_user("dev")
        machine.store_data(
            ">udd>dev>precious",
            [7] * 4,
            acl=[AclEntry("*", RingBracketSpec.data(4))],  # ring-4 data
        )
        machine.store_program(
            ">udd>dev>buggy",
            """
        .seg    buggy
main::  lda     =123
        sta     l_data,*       ; addressing error: touches ring-4 data
        halt
l_data: .its    precious
""",
            acl=[AclEntry("*", RingBracketSpec.procedure(5))],
        )
        process = machine.login(user)
        machine.initiate(process, ">udd>dev>buggy")
        return process

    def test_bug_caught_in_ring5(self, machine):
        process = self._build(machine)
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "buggy$main", ring=5)
        assert excinfo.value.code is FaultCode.ACV_WRITE_BRACKET

    def test_ring4_data_unharmed(self, machine):
        process = self._build(machine)
        with pytest.raises(Fault):
            machine.run(process, "buggy$main", ring=5)
        active = machine.supervisor.activate(">udd>dev>precious")
        assert machine.memory.peek_block(active.placed.addr, 4) == [7] * 4

    def test_same_program_certified_in_ring4_succeeds(self, machine):
        """The same binary, trusted into ring 4, works — protection
        environment changed without altering the program (programming
        generality, paper p. 5)."""
        user = machine.add_user("dev2")
        machine.store_data(
            ">udd>dev2>precious2",
            [7] * 4,
            acl=[AclEntry("*", RingBracketSpec.data(4))],
        )
        machine.store_program(
            ">udd>dev2>fixed",
            """
        .seg    fixed
main::  lda     =123
        sta     l_data,*
        halt
l_data: .its    precious2
""",
            acl=[AclEntry("*", RingBracketSpec.procedure(4))],
        )
        process = machine.login(user)
        machine.initiate(process, ">udd>dev2>fixed")
        result = machine.run(process, "fixed$main", ring=4)
        assert result.halted
        active = machine.supervisor.activate(">udd>dev2>precious2")
        assert machine.memory.peek_block(active.placed.addr, 1) == [123]


class TestLayeredSupervisor:
    """Ring-0/ring-1 supervisor layering with an internal gate between
    the layers (paper pp. 34-36)."""

    def _build(self, machine):
        user = machine.add_user("u")
        # ring-0 core: a gate reachable only from ring 1
        machine.store_program(
            ">sys>core",
            """
        .seg    core
        .gates  1
prim::  ada     =1000          ; the privileged primitive
        return  pr4|0
""",
            acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=1))],
        )
        # ring-1 layer: callable from user rings, calls down into core
        machine.store_program(
            ">sys>layer1",
            """
        .seg    layer1
        .gates  1
serve:: eap6    pr0|0
        spr4    pr6|1
        ada     =100
        eap4    back
        call    l_prim,*
back:   eap4    pr6|1,*
        return  pr4|0
l_prim: .its    core$prim
""",
            acl=[AclEntry("*", RingBracketSpec.procedure(1, callable_from=5))],
        )
        machine.store_program(
            ">udd>u>app",
            """
        .seg    app
main::  lda     =1
        eap4    back
        call    l_serve,*
back:   halt
l_serve: .its   layer1$serve
""",
            acl=USER4,
        )
        process = machine.login(user)
        machine.initiate(process, ">udd>u>app")
        return process

    def test_layered_call_chain(self, machine):
        process = self._build(machine)
        result = machine.run(process, "app$main", ring=4)
        assert result.halted
        assert result.a == 1101  # 1 + 100 (ring 1) + 1000 (ring 0)
        assert result.ring == 4

    def test_user_cannot_call_core_directly(self, machine):
        process = self._build(machine)
        machine.store_program(
            ">udd>u>direct",
            """
        .seg    direct
main::  eap4    back
        call    l_prim,*
back:   halt
l_prim: .its    core$prim
""",
            acl=USER4,
        )
        machine.initiate(process, ">udd>u>direct")
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "direct$main", ring=4)
        assert excinfo.value.code is FaultCode.ACV_OUTSIDE_CALL_BRACKET

    def test_layer1_change_does_not_touch_ring0(self, machine):
        """Modifying the ring-1 layer leaves ring-0 data intact — the
        error-confinement argument for layering (paper p. 36)."""
        process = self._build(machine)
        result = machine.run(process, "app$main", ring=4)
        crossings = result.ring_crossings
        assert crossings == 4  # 4->1, 1->0, 0->1, 1->4


class TestGradingSandbox:
    """A grader in ring 4 runs a student program in ring 6 via an
    upward call (paper p. 37)."""

    def _build(self, machine, student_src):
        user = machine.add_user("grader")
        machine.store_program(
            ">udd>grader>grader",
            """
        .seg    grader
main::  lda     =5
        eap4    back
        call    l_student,*
back:   halt                   ; A holds the student's answer
l_student: .its student$solve
""",
            acl=USER4,
        )
        machine.store_program(
            ">udd>grader>student",
            student_src,
            acl=[AclEntry("*", RingBracketSpec.procedure(6))],
        )
        process = machine.login(user)
        machine.initiate(process, ">udd>grader>grader")
        return process

    def test_honest_student_graded(self, machine):
        process = self._build(
            machine,
            """
        .seg    student
        .gates  1
solve:: ada     =37
        return  pr4|0
""",
        )
        result = machine.run(process, "grader$main", ring=4)
        assert result.a == 42
        assert result.ring == 4

    def test_student_cannot_call_supervisor_gates(self, machine):
        """Ring 6 is outside every supervisor gate extension."""
        process = self._build(
            machine,
            """
        .seg    student
        .gates  1
solve:: eap4    back
        call    l_cheat,*
back:   return  pr4|0
l_cheat: .its   svc$write
""",
        )
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "grader$main", ring=4)
        assert excinfo.value.code is FaultCode.ACV_OUTSIDE_CALL_BRACKET

    def test_student_cannot_touch_grader_stack(self, machine):
        process = self._build(
            machine,
            """
        .seg    student
        .gates  1
solve:: lda     =0
        sta     pr6|1          ; PR6 still names the ring-4 stack...
        return  pr4|0
""",
        )
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "grader$main", ring=4)
        # ...but its RING was raised to 6 on the upward call, and the
        # ring-4 stack is invisible above ring 4
        assert excinfo.value.code is FaultCode.ACV_WRITE_BRACKET
