"""Unit tests for effective-address formation (Figure 5) on live hardware."""

import pytest

from repro.cpu.address import MAX_INDIRECTION, form_effective_address
from repro.cpu.faults import Fault, FaultCode
from repro.formats.instruction import Instruction

from tests.helpers import BareMachine, ind_word


def make_inst(offset=0, indirect=False, pr=None, indexed=False):
    from repro.formats.instruction import TAG_INDEX_A, TAG_NONE

    return Instruction(
        opcode=0o010,  # LDA; the EA unit ignores the opcode
        offset=offset,
        indirect=indirect,
        prflag=pr is not None,
        prnum=pr or 0,
        tag=TAG_INDEX_A if indexed else TAG_NONE,
    )


@pytest.fixture
def bm():
    machine = BareMachine()
    machine.add_code(8, [0] * 16, ring=4)   # the "executing" segment
    machine.add_data(9, [0] * 16, ring=7)   # a data segment
    machine.start(8, 0, ring=4)
    return machine


class TestDirectAddressing:
    def test_offset_in_executing_segment(self, bm):
        tpr = form_effective_address(bm.proc, make_inst(offset=5))
        assert (tpr.segno, tpr.wordno, tpr.ring) == (8, 5, 4)

    def test_ring_starts_at_ring_of_execution(self, bm):
        bm.start(8, 0, ring=2)
        tpr = form_effective_address(bm.proc, make_inst(offset=0))
        assert tpr.ring == 2

    def test_indexed_adds_a_low_half(self, bm):
        bm.regs.set_a(3)
        tpr = form_effective_address(bm.proc, make_inst(offset=5, indexed=True))
        assert tpr.wordno == 8

    def test_indexed_wraps_18_bits(self, bm):
        bm.regs.set_a((1 << 18) - 1)
        tpr = form_effective_address(bm.proc, make_inst(offset=2, indexed=True))
        assert tpr.wordno == 1


class TestPRRelative:
    def test_segno_and_offset_from_pr(self, bm):
        bm.regs.pr(3).load(9, 10, 4)
        tpr = form_effective_address(bm.proc, make_inst(offset=2, pr=3))
        assert (tpr.segno, tpr.wordno) == (9, 12)

    def test_pr_ring_raises_effective_ring(self, bm):
        """The heart of argument validation: PRn.RING forces validation
        at the higher ring (paper p. 26)."""
        bm.regs.pr(3).load(9, 0, 6)
        tpr = form_effective_address(bm.proc, make_inst(pr=3))
        assert tpr.ring == 6

    def test_pr_ring_below_current_does_not_lower(self, bm):
        bm.start(8, 0, ring=4)
        bm.regs.pr(3).load(9, 0, 4)
        bm.regs.pr(3).ring = 0  # forged low ring (not reachable via EAP)
        tpr = form_effective_address(bm.proc, make_inst(pr=3))
        assert tpr.ring == 4

    def test_pr_wordno_wraps(self, bm):
        bm.regs.pr(1).load(9, (1 << 18) - 1, 4)
        tpr = form_effective_address(bm.proc, make_inst(offset=2, pr=1))
        assert tpr.wordno == 1


class TestIndirection:
    def test_single_indirect(self, bm):
        bm.memory.load_image(
            bm.dseg.get(8).addr + 5, [ind_word(9, 7, ring=0)]
        )
        tpr = form_effective_address(bm.proc, make_inst(offset=5, indirect=True))
        assert (tpr.segno, tpr.wordno) == (9, 7)

    def test_indirect_ring_field_raises(self, bm):
        bm.memory.load_image(bm.dseg.get(8).addr + 5, [ind_word(9, 7, ring=6)])
        tpr = form_effective_address(bm.proc, make_inst(offset=5, indirect=True))
        assert tpr.ring == 6

    def test_holder_write_top_raises(self, bm):
        """SDW.R1 of the segment holding the indirect word joins the
        max — the highest ring that could have written it."""
        bm.add_data(10, [ind_word(9, 3, ring=0)], ring=6)  # r1 = 6
        bm.regs.pr(2).load(10, 0, 4)
        tpr = form_effective_address(
            bm.proc, make_inst(offset=0, pr=2, indirect=True)
        )
        assert tpr.ring == 6

    def test_chained_indirection(self, bm):
        base8 = bm.dseg.get(8).addr
        base9 = bm.dseg.get(9).addr
        bm.memory.load_image(base8 + 5, [ind_word(9, 2, ring=0, chained=True)])
        bm.memory.load_image(base9 + 2, [ind_word(9, 11, ring=0)])
        tpr = form_effective_address(bm.proc, make_inst(offset=5, indirect=True))
        assert (tpr.segno, tpr.wordno) == (9, 11)

    def test_ring_accumulates_along_chain(self, bm):
        base8 = bm.dseg.get(8).addr
        base9 = bm.dseg.get(9).addr
        bm.memory.load_image(base8 + 5, [ind_word(9, 2, ring=5, chained=True)])
        bm.memory.load_image(base9 + 2, [ind_word(9, 11, ring=3)])
        tpr = form_effective_address(bm.proc, make_inst(offset=5, indirect=True))
        # max(4, 5 from first hop, 7 = R1 of segment 9, 3) = 7
        assert tpr.ring == 7

    def test_indirect_word_fetch_is_validated_read(self, bm):
        """Paper p. 27: retrieval of an indirect word is validated at the
        TPR.RING in force when it is encountered."""
        bm.add_data(11, [ind_word(9, 0)], ring=2)  # readable only to ring 2
        bm.regs.pr(2).load(11, 0, 4)
        with pytest.raises(Fault) as excinfo:
            form_effective_address(
                bm.proc, make_inst(offset=0, pr=2, indirect=True)
            )
        assert excinfo.value.code is FaultCode.ACV_READ_BRACKET

    def test_indirect_through_unreadable_segment(self, bm):
        bm.add_segment(12, [ind_word(9, 0)], read=False)
        bm.memory.load_image(bm.dseg.get(8).addr + 5, [ind_word(12, 0, chained=False)])
        # hop 1 lands on segment 12 directly:
        bm.regs.pr(2).load(12, 0, 4)
        with pytest.raises(Fault) as excinfo:
            form_effective_address(
                bm.proc, make_inst(offset=0, pr=2, indirect=True)
            )
        assert excinfo.value.code is FaultCode.ACV_NO_READ

    def test_indirection_loop_faults(self, bm):
        base9 = bm.dseg.get(9).addr
        bm.memory.load_image(base9 + 0, [ind_word(9, 0, chained=True)])
        bm.regs.pr(2).load(9, 0, 4)
        with pytest.raises(Fault) as excinfo:
            form_effective_address(
                bm.proc, make_inst(offset=0, pr=2, indirect=True)
            )
        assert excinfo.value.code is FaultCode.ILLEGAL_OPCODE
        assert str(MAX_INDIRECTION) in excinfo.value.detail

    def test_indirect_out_of_bounds(self, bm):
        bm.regs.pr(2).load(9, 100, 4)  # beyond bound 16
        with pytest.raises(Fault) as excinfo:
            form_effective_address(
                bm.proc, make_inst(offset=0, pr=2, indirect=True)
            )
        assert excinfo.value.code is FaultCode.ACV_OUT_OF_BOUNDS

    def test_effective_ring_never_below_current(self, bm):
        """Machine-level restatement of the Figure 5 invariant."""
        base8 = bm.dseg.get(8).addr
        bm.memory.load_image(base8 + 5, [ind_word(9, 0, ring=0)])
        for ring in range(8):
            bm.start(8, 0, ring=ring)
            # direct
            tpr = form_effective_address(bm.proc, make_inst(offset=1))
            assert tpr.ring >= ring
