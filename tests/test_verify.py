"""The self-verification module and its CLI command."""

from repro.analysis.verify import (
    ALL_CHECKS,
    CheckResult,
    check_call_invariants,
    check_crossing_claim,
    check_effective_ring,
    check_encodings,
    check_live_machine,
    check_nested_subset,
    check_return_invariants,
    render_report,
    verify_all,
)
from repro.cli import main


class TestChecks:
    def test_every_check_passes(self):
        for result in verify_all():
            assert result.ok, f"{result.name}: {result.detail}"

    def test_individual_checks(self):
        assert check_encodings().ok
        assert check_nested_subset().ok
        assert check_call_invariants().ok
        assert check_return_invariants().ok
        assert check_effective_ring().ok

    def test_live_machine_check(self):
        result = check_live_machine()
        assert result.ok
        assert "crossings=2" in result.detail

    def test_crossing_claim_check(self):
        result = check_crossing_claim()
        assert result.ok
        assert "x)" in result.detail

    def test_all_checks_registered(self):
        assert len(ALL_CHECKS) == 7

    def test_crashing_check_reported_not_raised(self, monkeypatch):
        import repro.analysis.verify as verify_mod

        def boom():
            raise RuntimeError("injected")

        monkeypatch.setattr(verify_mod, "ALL_CHECKS", [boom])
        results = verify_mod.verify_all()
        assert len(results) == 1
        assert not results[0].ok
        assert "injected" in results[0].detail


class TestReport:
    def test_render_marks_failures(self):
        text = render_report(
            [
                CheckResult("good", True, "fine"),
                CheckResult("bad", False, "broken"),
            ]
        )
        assert "[ok  ] good" in text
        assert "[FAIL] bad" in text
        assert "1/2 checks passed" in text

    def test_cli_verify_exit_status(self, capsys):
        assert main(["verify"]) == 0
        assert "7/7 checks passed" in capsys.readouterr().out
