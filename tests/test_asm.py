"""Unit tests for the assembler: parsing, two passes, links, listings."""

import pytest

from repro.asm import assemble, listing
from repro.asm.parser import (
    parse_line,
    parse_number,
    parse_operand,
    split_expression,
)
from repro.cpu.isa import Op
from repro.errors import AssemblyError
from repro.formats.indirect import IndirectWord
from repro.formats.instruction import Instruction, TAG_IMMEDIATE, TAG_INDEX_A


class TestParser:
    def test_blank_and_comment_lines_skipped(self):
        assert parse_line("", 1) is None
        assert parse_line("   ; just a comment", 2) is None

    def test_label_and_mnemonic(self):
        line = parse_line("loop:  lda  =5", 1)
        assert line.label == "loop"
        assert not line.exported
        assert line.op == "lda"

    def test_exported_label(self):
        line = parse_line("main::  nop", 1)
        assert line.exported

    def test_label_only_line(self):
        line = parse_line("here:", 1)
        assert line.label == "here" and line.op is None

    def test_directive_args(self):
        line = parse_line("  .word 1, 2, 3", 1)
        assert line.is_directive
        assert line.args == ["1", "2", "3"]

    def test_unlabelled_column0_text_rejected(self):
        with pytest.raises(AssemblyError):
            parse_line("lda =5", 1)

    def test_operand_immediate(self):
        op = parse_operand("=42", 1)
        assert op.immediate and op.expr == "42"

    def test_operand_pr_relative(self):
        op = parse_operand("pr3|7", 1)
        assert op.prnum == 3 and op.expr == "7"

    def test_operand_indirect(self):
        op = parse_operand("link,*", 1)
        assert op.indirect and op.expr == "link"

    def test_operand_indexed(self):
        op = parse_operand("table,x", 1)
        assert op.indexed

    def test_operand_indirect_and_indexed(self):
        op = parse_operand("table,x,*", 1)
        assert op.indirect and op.indexed

    def test_immediate_indirect_rejected(self):
        with pytest.raises(AssemblyError):
            parse_operand("=5,*", 1)

    def test_numbers(self):
        assert parse_number("42", 1) == 42
        assert parse_number("0o777", 1) == 0o777
        assert parse_number("0x1F", 1) == 31
        assert parse_number("-3", 1) == -3

    def test_bad_number(self):
        with pytest.raises(AssemblyError):
            parse_number("zzz", 1)

    def test_expression_split(self):
        assert split_expression("label+3", 1) == ("label", 3)
        assert split_expression("label-2", 1) == ("label", -2)
        assert split_expression(".", 1) == (".", 0)
        assert split_expression(".+1", 1) == (".", 1)
        assert split_expression("17", 1) == ("", 17)


class TestAssembler:
    def test_simple_program(self):
        image = assemble(
            """
        .seg    t
start:  lda     =5
        halt
"""
        )
        assert image.name == "t"
        assert len(image.words) == 2
        inst = Instruction.unpack(image.words[0])
        assert inst.opcode == Op.LDA.number
        assert inst.tag == TAG_IMMEDIATE
        assert inst.offset == 5

    def test_label_resolution(self):
        image = assemble(
            """
        tra     done
        nop
done:   halt
"""
        )
        assert Instruction.unpack(image.words[0]).offset == 2

    def test_forward_and_backward_references(self):
        image = assemble(
            """
a:      tra     b
b:      tra     a
"""
        )
        assert Instruction.unpack(image.words[0]).offset == 1
        assert Instruction.unpack(image.words[1]).offset == 0

    def test_exported_entries(self):
        image = assemble(
            """
main::  nop
inner:  nop
also::  halt
"""
        )
        assert image.entries == {"main": 0, "also": 2}

    def test_gates_directive(self):
        image = assemble(
            """
        .gates  2
g0::    nop
g1::    nop
        halt
"""
        )
        assert image.gate_count == 2
        assert image.gates() == [("g0", 0), ("g1", 1)]

    def test_gates_exceeding_length_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("        .gates 5\n        nop\n")

    def test_word_directive(self):
        image = assemble("        .word 1, 0o10, label\nlabel:  halt\n")
        assert image.words[:3] == [1, 8, 3]

    def test_zero_directive(self):
        image = assemble("        .zero 4\n        halt\n")
        assert image.words == [0, 0, 0, 0] + [image.words[4]]

    def test_equ(self):
        image = assemble(
            """
        .equ    size, 10
        lda     =size
        halt
"""
        )
        assert Instruction.unpack(image.words[0]).offset == 10

    def test_pr_relative_operand(self):
        image = assemble("        sta  pr2|3\n")
        inst = Instruction.unpack(image.words[0])
        assert inst.prflag and inst.prnum == 2 and inst.offset == 3

    def test_indirect_operand(self):
        image = assemble("        lda  0,*\n")
        assert Instruction.unpack(image.words[0]).indirect

    def test_indexed_operand(self):
        image = assemble("        lda  5,x\n")
        assert Instruction.unpack(image.words[0]).tag == TAG_INDEX_A

    def test_its_emits_link_request(self):
        image = assemble("l:      .its  svc$write, 3\n")
        assert len(image.links) == 1
        link = image.links[0]
        assert link.symbol == "svc$write"
        assert link.field == "pointer"
        ind = IndirectWord.unpack(image.words[0])
        assert ind.ring == 3

    def test_ptr_resolves_wordno_locally(self):
        image = assemble(
            """
p:      .ptr    target, 2
target: halt
"""
        )
        ind = IndirectWord.unpack(image.words[0])
        assert ind.wordno == 1 and ind.ring == 2
        assert image.links[0].field == "segno"

    def test_direct_external_reference_rejected_with_hint(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("        lda  other$thing\n")
        assert ".its" in str(excinfo.value)

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:  nop\na:  nop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("        tra  nowhere\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("        frobnicate  5\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("        .frob  5\n")

    def test_halt_with_operand_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("        halt  5\n")

    def test_transfer_immediate_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("        tra  =5\n")

    def test_dot_is_current_location(self):
        image = assemble(
            """
        nop
        tra     .-1
"""
        )
        assert Instruction.unpack(image.words[1]).offset == 0

    def test_source_map_lines(self):
        image = assemble("        nop\n        halt\n")
        assert image.source_map[0] == 1
        assert image.source_map[1] == 2

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("        nop\n        tra  nowhere\n")
        assert "line 2" in str(excinfo.value)


class TestListing:
    def test_listing_contains_words_and_entries(self):
        source = """
        .seg    demo
        .gates  1
main::  lda     =5
        halt
"""
        image = assemble(source)
        text = listing(image, source)
        assert "demo" in text
        assert "main" in text
        assert "(gate)" in text

    def test_listing_shows_links(self):
        image = assemble("l:  .its  svc$write\n")
        assert "svc$write" in listing(image)
