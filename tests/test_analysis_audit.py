"""The static ring-security auditor."""

import pytest

from repro.analysis.audit import (
    audit,
    capability_matrix,
    gate_surface,
    injection_escalation_possible,
    render_audit,
)
from repro.core.acl import AclEntry, RingBracketSpec
from repro.krnl.filesystem import FileSystem
from repro.krnl.users import User
from repro.mem.segment import SegmentImage


@pytest.fixture
def world():
    fs = FileSystem()
    alice = User("alice")
    bob = User("bob")

    def img(name, gates=0):
        image = SegmentImage.zeros(name, 8)
        image.gate_count = gates
        return image

    fs.create(
        ">sys>svc",
        img("svc", gates=3),
        alice,
        acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=5, gate=3))],
    )
    fs.create(
        ">udd>alice>data",
        img("data"),
        alice,
        acl=[
            AclEntry("alice", RingBracketSpec.data(4)),
            AclEntry("bob", RingBracketSpec.data(4, write=False)),
        ],
    )
    fs.create(
        ">udd>alice>private",
        img("private"),
        alice,
        acl=[AclEntry("alice", RingBracketSpec.data(2))],
    )
    return fs, alice, bob


class TestCapabilityMatrix:
    def test_matrix_respects_acl_matching(self, world):
        fs, alice, bob = world
        matrix = capability_matrix(fs, [alice, bob])
        bob_private = [
            c for c in matrix if c.user == "bob" and "private" in c.path
        ]
        assert bob_private == []

    def test_matrix_reflects_brackets(self, world):
        fs, alice, bob = world
        matrix = capability_matrix(fs, [alice, bob])
        bob_data_writes = [
            c for c in matrix if c.user == "bob" and c.path.endswith("data") and c.write
        ]
        assert bob_data_writes == []  # bob's grant is read-only
        alice_data_writes = {
            c.ring
            for c in matrix
            if c.user == "alice" and c.path.endswith("data") and c.write
        }
        assert alice_data_writes == set(range(5))  # write bracket 0..4

    def test_gate_capability_rows(self, world):
        fs, alice, bob = world
        matrix = capability_matrix(fs, [bob])
        gate_rings = {c.ring for c in matrix if c.path == ">sys>svc" and c.gate}
        assert gate_rings == {1, 2, 3, 4, 5}


class TestGateSurface:
    def test_surface_lists_svc(self, world):
        fs, alice, bob = world
        surface = gate_surface(fs, bob)
        assert len(surface) == 1
        gate = surface[0]
        assert gate.path == ">sys>svc"
        assert gate.entry_ring == 0
        assert (gate.callable_from_low, gate.callable_from_high) == (1, 5)
        assert gate.gate_count == 3

    def test_data_segments_not_on_surface(self, world):
        fs, alice, bob = world
        assert all(g.path == ">sys>svc" for g in gate_surface(fs, alice))


class TestFindings:
    def test_clean_world_has_no_warnings(self, world):
        fs, alice, bob = world
        report = audit(fs, [alice, bob])
        assert not [f for f in report.findings if f.severity == "warn"]

    def test_writable_gate_segment_flagged(self, world):
        fs, alice, bob = world
        image = SegmentImage.zeros("shady", 8)
        image.gate_count = 1
        fs.create(
            ">udd>alice>shady",
            image,
            alice,
            acl=[
                AclEntry(
                    "*",
                    RingBracketSpec(
                        r1=2, r2=2, r3=5, read=True, write=True, execute=True, gate=1
                    ),
                )
            ],
        )
        report = audit(fs, [alice, bob])
        warns = [f for f in report.findings if f.severity == "warn"]
        assert any("writable gate segment" in f.message for f in warns)

    def test_wildcard_inner_ring_write_flagged(self, world):
        fs, alice, bob = world
        fs.create(
            ">sys>loose",
            SegmentImage.zeros("loose", 4),
            alice,
            acl=[AclEntry("*", RingBracketSpec.data(1))],
        )
        report = audit(fs, [alice, bob])
        assert any("wildcard write" in f.message for f in report.findings)

    def test_uncallable_gate_extension_noted(self, world):
        fs, alice, bob = world
        fs.create(
            ">sys>deadgate",
            SegmentImage.zeros("deadgate", 4),  # no gates in the image
            alice,
            acl=[
                AclEntry(
                    "*",
                    RingBracketSpec(r1=0, r2=0, r3=5, read=True, execute=True),
                )
            ],
        )
        report = audit(fs, [alice, bob])
        assert any("empty gate list" in f.message for f in report.findings)


class TestInjectionTheorem:
    def test_theorem_holds_on_any_expressible_config(self, world):
        fs, alice, bob = world
        assert not injection_escalation_possible(fs, [alice, bob])

    def test_report_records_theorem(self, world):
        fs, alice, bob = world
        report = audit(fs, [alice, bob])
        assert report.injection_theorem_holds


class TestRendering:
    def test_render_contains_sections(self, world):
        fs, alice, bob = world
        text = render_audit(audit(fs, [alice, bob]))
        assert "gate surface of bob" in text
        assert "no-injection theorem: holds" in text
