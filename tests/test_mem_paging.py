"""Unit tests for the transparent paging layer."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.paging import (
    PAGE_WORDS,
    PageFaultSignal,
    PageTable,
    pages_for,
    translate_paged,
)


class TestPagesFor:
    def test_exact_multiple(self):
        assert pages_for(2 * PAGE_WORDS) == 2

    def test_rounds_up(self):
        assert pages_for(PAGE_WORDS + 1) == 2

    def test_zero(self):
        assert pages_for(0) == 0

    def test_one_word(self):
        assert pages_for(1) == 1


class TestPageTable:
    def test_build_allocates_frames(self, memory):
        table = PageTable.build(memory, bound=3 * PAGE_WORDS)
        assert table.npages == 3

    def test_load_and_read_words(self, memory):
        table = PageTable.build(memory, bound=2 * PAGE_WORDS)
        words = list(range(2 * PAGE_WORDS))
        table.load_words(words)
        assert table.read_word(0) == 0
        assert table.read_word(PAGE_WORDS) == PAGE_WORDS
        assert table.read_word(2 * PAGE_WORDS - 1) == 2 * PAGE_WORDS - 1

    def test_translate_present_page(self, memory):
        table = PageTable.build(memory, bound=PAGE_WORDS)
        table.load_words([7] * PAGE_WORDS)
        addr = translate_paged(memory, table.addr, 5)
        assert memory.peek_block(addr, 1) == [7]

    def test_translate_charges_one_read(self, memory):
        table = PageTable.build(memory, bound=PAGE_WORDS)
        memory.reset_counters()
        translate_paged(memory, table.addr, 0)
        assert memory.reads == 1  # the PTW fetch

    def test_missing_page_signals(self, memory):
        table = PageTable.build(memory, bound=2 * PAGE_WORDS)
        table.unmap_page(1)
        with pytest.raises(PageFaultSignal) as excinfo:
            translate_paged(memory, table.addr, PAGE_WORDS + 3)
        assert excinfo.value.page_index == 1

    def test_remap_after_unmap(self, memory):
        table = PageTable.build(memory, bound=PAGE_WORDS)
        table.unmap_page(0)
        frame = memory.allocate(PAGE_WORDS)
        table.map_page(0, frame.addr)
        assert translate_paged(memory, table.addr, 0) == frame.addr

    def test_scattered_frames_are_transparent(self, memory):
        """Pages land in scattered blocks; word addressing is unchanged."""
        table = PageTable.build(memory, bound=3 * PAGE_WORDS)
        words = list(range(3 * PAGE_WORDS))
        table.load_words(words)
        for wordno in (0, PAGE_WORDS - 1, PAGE_WORDS, 3 * PAGE_WORDS - 1):
            addr = translate_paged(memory, table.addr, wordno)
            assert memory.peek_block(addr, 1) == [wordno]

    def test_map_page_index_validated(self, memory):
        table = PageTable.build(memory, bound=PAGE_WORDS)
        with pytest.raises(ConfigurationError):
            table.map_page(5, 0)

    def test_read_word_missing_page(self, memory):
        table = PageTable.build(memory, bound=PAGE_WORDS)
        table.unmap_page(0)
        with pytest.raises(PageFaultSignal):
            table.read_word(0)
