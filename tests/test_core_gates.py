"""Unit tests for the Figure 8 (CALL) and Figure 9 (RETURN) decisions."""

import itertools

import pytest

from repro.core.gates import (
    CallOutcome,
    ReturnOutcome,
    decide_call,
    decide_return,
    gate_ok,
)
from repro.core.rings import RingBrackets


def call(eff, cur, brackets, execute=True, wordno=0, gates=4, same=False):
    return decide_call(eff, cur, brackets, execute, wordno, gates, same)


def ret(eff, cur, brackets, execute=True):
    return decide_return(eff, cur, brackets, execute)


class TestGateRule:
    def test_word_inside_gate_list(self):
        assert gate_ok(0, 3, same_segment=False)
        assert gate_ok(2, 3, same_segment=False)

    def test_word_outside_gate_list(self):
        assert not gate_ok(3, 3, same_segment=False)

    def test_empty_gate_list_blocks_everything(self):
        assert not gate_ok(0, 0, same_segment=False)

    def test_same_segment_bypasses_gate_list(self):
        """Internal-procedure calls ignore the gate list (paper p. 29)."""
        assert gate_ok(100, 0, same_segment=True)


class TestCallDecision:
    GATED = RingBrackets(0, 0, 5)      # ring-0 gate segment, callable to 5
    USER = RingBrackets(4, 4, 4)       # plain ring-4 procedure
    WIDE = RingBrackets(2, 5, 6)       # wide execute bracket + extension

    def test_same_ring_call(self):
        decision = call(4, 4, self.USER)
        assert decision.outcome is CallOutcome.SAME_RING
        assert decision.new_ring == 4
        assert decision.proceeds

    def test_downward_call_switches_to_r2(self):
        """Ring switches down to the top of the execute bracket."""
        decision = call(4, 4, self.GATED)
        assert decision.outcome is CallOutcome.DOWNWARD
        assert decision.new_ring == 0

    def test_downward_call_wide_bracket(self):
        decision = call(6, 6, self.WIDE)
        assert decision.outcome is CallOutcome.DOWNWARD
        assert decision.new_ring == 5

    def test_call_within_wide_bracket_keeps_ring(self):
        decision = call(3, 3, self.WIDE)
        assert decision.outcome is CallOutcome.SAME_RING
        assert decision.new_ring == 3

    def test_upward_call_traps(self):
        """Calls from below the execute bracket need software (p. 22)."""
        decision = call(1, 1, self.WIDE)
        assert decision.outcome is CallOutcome.TRAP_UPWARD_CALL
        assert not decision.proceeds
        assert decision.new_ring is None

    def test_no_execute_flag(self):
        decision = call(4, 4, self.USER, execute=False)
        assert decision.outcome is CallOutcome.FAULT_NO_EXECUTE

    def test_above_gate_extension(self):
        decision = call(6, 6, self.GATED)
        assert decision.outcome is CallOutcome.FAULT_OUTSIDE_BRACKET

    def test_exactly_top_of_gate_extension_allowed(self):
        decision = call(5, 5, self.GATED)
        assert decision.outcome is CallOutcome.DOWNWARD

    def test_not_a_gate(self):
        decision = call(4, 4, self.GATED, wordno=10, gates=3)
        assert decision.outcome is CallOutcome.FAULT_NOT_GATE

    def test_gate_required_even_same_ring(self):
        """An inter-segment CALL must hit a gate even without a ring
        change (accidental-entry protection, paper p. 29)."""
        decision = call(4, 4, self.USER, wordno=10, gates=3)
        assert decision.outcome is CallOutcome.FAULT_NOT_GATE

    def test_same_segment_ignores_gates(self):
        decision = call(4, 4, self.USER, wordno=10, gates=0, same=True)
        assert decision.outcome is CallOutcome.SAME_RING

    def test_raised_effective_ring_faults(self):
        """Paper p. 30: effective ring above the ring of execution is an
        access violation even when the execute bracket would admit it."""
        decision = call(4, 3, RingBrackets(3, 4, 5))
        assert decision.outcome is CallOutcome.FAULT_RING_RAISED

    def test_raised_effective_ring_beats_gate_check(self):
        decision = call(5, 2, self.GATED, wordno=10, gates=3)
        assert decision.outcome is CallOutcome.FAULT_RING_RAISED

    def test_execute_flag_checked_first(self):
        decision = call(5, 2, self.GATED, execute=False)
        assert decision.outcome is CallOutcome.FAULT_NO_EXECUTE

    def test_gate_checked_before_upward_trap(self):
        """An upward call must still be aimed at a gate; the gate check
        precedes the trap so software never sees a non-gate target."""
        decision = call(1, 1, self.WIDE, wordno=10, gates=3)
        assert decision.outcome is CallOutcome.FAULT_NOT_GATE

    def test_ring0_caller_into_gate_segment(self):
        decision = call(0, 0, self.GATED)
        assert decision.outcome is CallOutcome.SAME_RING
        assert decision.new_ring == 0

    def test_every_proceeding_call_lands_in_execute_bracket(self):
        """Whatever the inputs, a completed CALL executes the target in
        a ring within its execute bracket."""
        for r1, r2, r3 in itertools.combinations_with_replacement(range(8), 3):
            brackets = RingBrackets(r1, r2, r3)
            for eff in range(8):
                decision = call(eff, eff, brackets)
                if decision.proceeds:
                    assert brackets.execute_allowed(decision.new_ring)

    def test_proceeding_call_never_raises_ring(self):
        """A completed CALL never moves to a higher-numbered ring."""
        for r1, r2, r3 in itertools.combinations_with_replacement(range(8), 3):
            brackets = RingBrackets(r1, r2, r3)
            for eff in range(8):
                decision = call(eff, eff, brackets)
                if decision.proceeds:
                    assert decision.new_ring <= eff


class TestReturnDecision:
    USER = RingBrackets(4, 4, 4)
    WIDE = RingBrackets(2, 5, 6)

    def test_same_ring_return(self):
        decision = ret(4, 4, self.USER)
        assert decision.outcome is ReturnOutcome.SAME_RING
        assert decision.new_ring == 4

    def test_upward_return(self):
        decision = ret(4, 0, self.USER)
        assert decision.outcome is ReturnOutcome.UPWARD
        assert decision.new_ring == 4

    def test_downward_return_traps(self):
        decision = ret(2, 5, self.WIDE)
        assert decision.outcome is ReturnOutcome.TRAP_DOWNWARD_RETURN

    def test_no_execute_flag(self):
        decision = ret(4, 4, self.USER, execute=False)
        assert decision.outcome is ReturnOutcome.FAULT_NO_EXECUTE

    def test_destination_below_execute_bracket(self):
        decision = ret(1, 1, self.WIDE)
        assert decision.outcome is ReturnOutcome.FAULT_EXECUTE_BRACKET

    def test_destination_above_execute_bracket(self):
        decision = ret(6, 4, self.WIDE)
        assert decision.outcome is ReturnOutcome.FAULT_EXECUTE_BRACKET

    def test_return_into_wide_bracket_from_below(self):
        decision = ret(3, 0, self.WIDE)
        assert decision.outcome is ReturnOutcome.UPWARD
        assert decision.new_ring == 3

    def test_proceeding_return_never_lowers_ring(self):
        """Paper p. 34: the RETURN is guaranteed to reach the caller's
        ring or higher, never lower."""
        for r1, r2, r3 in itertools.combinations_with_replacement(range(8), 3):
            brackets = RingBrackets(r1, r2, r3)
            for cur in range(8):
                for eff in range(cur, 8):
                    decision = ret(eff, cur, brackets)
                    if decision.proceeds:
                        assert decision.new_ring >= cur

    def test_return_decision_total_over_reachable_space(self):
        """Every (eff >= cur) input yields a defined outcome."""
        for cur in range(8):
            for eff in range(cur, 8):
                decision = ret(eff, cur, self.WIDE)
                assert decision.outcome is not None
