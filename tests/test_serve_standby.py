"""Replication end to end: standby service, shipping, hot failover.

The acceptance bar for the replication subsystem is exactness under
failover: killing the primary mid-load with ``--replicas >= 1`` must
yield merged architectural counters bit-identical to the no-failure
run of the same call set — zero dropped calls, zero double-executed
calls.  That is pinned twice here: once at the unit level
(:class:`TestPromotionExactness`, a hand-driven crash/promote/resume
sequence compared against a single uninterrupted engine) and once end
to end (:class:`TestFailoverUnderLoad`, SIGKILL against a real process
pool, with the slot journals' record-by-record metric sums compared to
the client-side per-call sums).
"""

import asyncio
import json
import os
import signal

import pytest

from repro.serve import workers
from repro.serve.admission import RingPolicy
from repro.serve.gateway import GatewayConfig, RingGateway
from repro.serve.loadgen import run_load
from repro.serve.standby import (
    ReplicaClient,
    ReplicationConfig,
    StandbyConfig,
    StandbyServer,
)
from repro.sim.metrics import MetricsSnapshot
from repro.state.recover import JOURNAL_NAME, recover_slot
from repro.state.replication import JournalTailer, encode_frame, read_frames


def run(coro):
    return asyncio.run(coro)


def gateway_config(**overrides):
    defaults = dict(
        port=0,
        workers=1,
        backend="thread",
        call_timeout=60.0,
        drain_timeout=60.0,
        default_policy=RingPolicy(rate=None, max_pending=64),
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


async def with_gateway(config, body):
    gateway = RingGateway(config)
    await gateway.start()
    try:
        return await body(gateway)
    finally:
        await gateway.stop()


def make_jobs(count, user="alice", start=0):
    return [
        {
            "user": user,
            "ring": 4,
            "program": "call_loop",
            "args": {"count": 2},
            "call_id": f"call-{user}-{start + i}",
        }
        for i in range(count)
    ]


def journal_architectural_sum(durability_dir):
    """Sum of every slot journal's per-record architectural metrics.

    Each executed call appears in exactly one journal record, so this
    equals the client-side per-call sum iff nothing was dropped or
    double-executed — the strongest failover-exactness check there is.
    """
    total = MetricsSnapshot.zero()
    calls = 0
    slots_root = os.path.join(durability_dir, "slots")
    for name in sorted(os.listdir(slots_root)):
        journal = os.path.join(slots_root, name, JOURNAL_NAME)
        for frame in read_frames(journal):
            metrics = frame.record["result"].get("metrics")
            if metrics is not None:
                total = total.plus(MetricsSnapshot.from_dict(metrics))
                calls += 1
    return calls, total.architectural()


@pytest.fixture
def durable_state(tmp_path):
    workers.configure_durability(
        workers.DurabilityConfig(
            dir=str(tmp_path), slots=1, checkpoint_interval=10_000,
            fsync_every=1,
        )
    )
    state = workers._WorkerState()
    yield state
    workers.release_live_slots()
    workers.configure_durability(None)


class TestStandbyServer:
    def test_ship_stats_audit_lookup_over_tcp(self, durable_state, tmp_path):
        jobs = make_jobs(6)
        for job in jobs:
            assert "error" not in durable_state.execute(job)
        durable_state.journal.sync()
        frames = JournalTailer(
            os.path.join(durable_state.slot_dir, JOURNAL_NAME)
        ).poll()
        primary_arch = durable_state.engine.total.architectural()

        async def body():
            server = StandbyServer(StandbyConfig(dir=str(tmp_path)))
            await server.start()
            client = await ReplicaClient.open("127.0.0.1", server.port)
            try:
                ack = await client.request(
                    {
                        "verb": "ship",
                        "slot": 0,
                        "frames": [encode_frame(f) for f in frames[:4]],
                    }
                )
                assert ack["ok"] and ack["applied_seq"] == 4
                # redelivery is skipped idempotently
                ack = await client.request(
                    {
                        "verb": "ship",
                        "slot": 0,
                        "frames": [encode_frame(f) for f in frames],
                    }
                )
                assert ack["applied_seq"] == 6
                assert ack["skipped"] == 4
                stats = await client.request({"verb": "stats"})
                assert stats["slots"]["0"]["applied_seq"] == 6
                # the replica answers with the primary's figures,
                # locally, without touching the primary
                assert stats["slots"]["0"]["architectural"] == primary_arch
                audit = await client.request({"verb": "audit", "slot": 0})
                assert audit["applied_seq"] == 6
                assert "call-alice-5" in audit["recent_call_ids"]
                assert audit["users"] == ["alice"]
                hit = await client.request(
                    {"verb": "lookup", "call_id": "call-alice-2"}
                )
                assert hit["found"] and hit["slot"] == 0
                miss = await client.request(
                    {"verb": "lookup", "call_id": "nope"}
                )
                assert miss["found"] is False
            finally:
                await client.close()
                await server.stop()

        run(body())

    def test_tampered_ship_batch_is_refused(self, durable_state, tmp_path):
        job = make_jobs(1)[0]
        assert "error" not in durable_state.execute(job)
        durable_state.journal.sync()
        (frame,) = JournalTailer(
            os.path.join(durable_state.slot_dir, JOURNAL_NAME)
        ).poll()
        entry = encode_frame(frame)
        entry["record"] = dict(entry["record"], call_id="forged")

        async def body():
            server = StandbyServer(StandbyConfig(dir=str(tmp_path)))
            await server.start()
            client = await ReplicaClient.open("127.0.0.1", server.port)
            try:
                ack = await client.request(
                    {"verb": "ship", "slot": 0, "frames": [entry]}
                )
                assert ack["ok"] is False
                assert "CRC" in ack["detail"]
            finally:
                await client.close()
                await server.stop()

        run(body())

    def test_replication_config_validation(self):
        with pytest.raises(Exception, match="replicas"):
            ReplicationConfig(dir="x", slots=1, replicas=0)
        with pytest.raises(Exception, match="durability"):
            GatewayConfig(replicas=1).replication()


class TestPromotionExactness:
    """The unit-level half of the failover-exactness acceptance bar."""

    def test_crash_promote_resume_is_bit_identical(self, tmp_path):
        # One user throughout, with mid-journal checkpoints: the
        # hardest case for replica verification, because the primary's
        # checkpoint-boundary cache drops make its *host-tier* figures
        # diverge from any fresh replayer — while the architectural
        # figures must stay bit-identical.
        jobs = make_jobs(40, user="solo")
        workers.configure_durability(
            workers.DurabilityConfig(
                dir=str(tmp_path), slots=1, checkpoint_interval=6,
                fsync_every=1,
            )
        )
        try:
            primary = workers._WorkerState()
            slot_dir = primary.slot_dir
            for job in jobs[:30]:
                assert "error" not in primary.execute(job)
            primary.journal.sync()

            # a follower shipped to within 4 records of the crash
            from repro.state.replication import ReplicaApplier

            frames = JournalTailer(
                os.path.join(slot_dir, JOURNAL_NAME)
            ).poll()
            assert len(frames) == 30
            applier = ReplicaApplier()
            for frame in frames[:26]:
                applier.apply(frame)

            # the primary dies; its claim is abandoned
            workers.release_live_slots()

            # hot failover: replay only the 4-record tail, snapshot
            report = applier.promote(slot_dir)
            assert report["replayed_tail"] == 4

            # the successor claims the slot (generation bump = fence),
            # recovers from the promotion snapshot with an empty tail
            successor = workers._WorkerState()
            assert successor.slot_dir == slot_dir
            assert successor.generation == primary.generation + 1
            assert successor.engine.calls == 30

            # a call in flight at the crash is retried: the promotion
            # snapshot's dedup cache answers it, no double execution
            retry = successor.execute(jobs[28])
            assert retry["deduplicated"] is True
            assert successor.engine.calls == 30

            # traffic resumes on the promoted state
            for job in jobs[30:]:
                assert "error" not in successor.execute(job)
            resumed_arch = successor.engine.total.architectural()
            resumed_calls = successor.engine.calls
        finally:
            workers.release_live_slots()
            workers.configure_durability(None)

        # the no-failure reference: one engine, same 40 calls, no
        # crash, no checkpoints, no replication
        from repro.serve.workers import GateCallEngine

        reference = GateCallEngine()
        for job in jobs:
            result = reference.run_job(job)
            assert "error" not in result
        assert resumed_calls == reference.calls == 40
        assert resumed_arch == reference.total.architectural()

        # and the journal agrees record by record: 40 distinct calls,
        # summing to the same architectural figures
        calls, journal_arch = journal_architectural_sum(str(tmp_path))
        assert calls == 40
        assert journal_arch == reference.total.architectural()


class TestReplicatedGateway:
    def test_shipping_reaches_zero_lag_and_mirrors_the_primary(
        self, tmp_path
    ):
        config = gateway_config(
            durability_dir=str(tmp_path),
            checkpoint_interval=10_000,
            fsync_every=1,
            replicas=1,
            ship_every=2,
            ack_window=2,
        )

        async def body(gateway):
            report = await run_load(
                "127.0.0.1", gateway.port, sessions=2, calls=8
            )
            assert report.check() == [], report.check()
            # shipping is asynchronous: wait until every executed call
            # (one journal record each) has been applied — a momentary
            # lag_records == 0 can fire between fsync batches
            for _ in range(200):
                stats = gateway.stats_payload()
                followers = stats["replication"]["followers"]
                if followers and all(
                    f["applied_seq"] == report.ok for f in followers
                ):
                    break
                await asyncio.sleep(0.02)
            else:
                pytest.fail(f"followers never caught up: {followers}")
            for follower in followers:
                assert follower["lag_records"] == 0
            assert stats["replication"]["enabled"] is True
            assert stats["replication"]["promotions"] == 0
            for follower in followers:
                assert follower["shipped_seq"] == follower["journal_seq"]
                assert follower["last_ack_age_s"] is not None
            # the in-process standby's replica machine carries the
            # gateway's merged architectural figures, bit for bit
            (follower_handle,) = gateway._replicas._followers
            applier = follower_handle.server.applier_for(0)
            assert (
                applier.engine.total.architectural()
                == stats["architectural"]
            )
            return report

        run(with_gateway(config, body))

    def test_stats_verb_carries_the_replication_block(self, tmp_path):
        config = gateway_config(
            durability_dir=str(tmp_path), replicas=1
        )

        async def body(gateway):
            report = await run_load(
                "127.0.0.1", gateway.port, sessions=1, calls=2
            )
            assert report.check() == []
            block = report.stats["replication"]
            assert block["enabled"] is True
            assert block["replicas"] == 1
            assert block["ship_every"] == 8
            assert {"follower", "slot", "shipped_seq", "applied_seq",
                    "lag_records", "last_ack_age_s"} <= set(
                block["followers"][0]
            )

        run(with_gateway(config, body))

    def test_unreplicated_stats_say_disabled(self):
        config = gateway_config()

        async def body(gateway):
            report = await run_load(
                "127.0.0.1", gateway.port, sessions=1, calls=1
            )
            assert report.stats["replication"] == {"enabled": False}

        run(with_gateway(config, body))


class TestFailoverUnderLoad:
    """The end-to-end half of the failover-exactness acceptance bar."""

    def test_sigkill_primary_promotes_and_stays_exact(self, tmp_path):
        config = gateway_config(
            workers=2,
            backend="process",
            durability_dir=str(tmp_path),
            checkpoint_interval=8,
            fsync_every=1,
            replicas=1,
            ship_every=2,
            ack_window=2,
        )

        async def body(gateway):
            if not gateway.pool.backend.startswith("process"):
                pytest.skip("process pool unavailable in this environment")

            async def assassin():
                while gateway.counters.completed < 20:
                    await asyncio.sleep(0.02)
                victim = list(gateway.pool.executor._processes)[0]
                os.kill(victim, signal.SIGKILL)

            kill_task = asyncio.create_task(assassin())
            report = await run_load(
                "127.0.0.1",
                gateway.port,
                sessions=4,
                calls=40,
                args={"n": 30000},
                program="compute",
            )
            await kill_task
            return report

        report = run(with_gateway(config, body))
        assert report.check() == [], report.check()
        assert report.ok == report.sessions * report.calls_per_session
        gateway_stats = report.stats["gateway"]
        assert gateway_stats["recoveries"] >= 1
        # the recovery went through promotion, not cold restore
        assert gateway_stats["promotions"] >= 1
        assert report.stats["consistent"] is True
        assert report.stats["replication"]["promotions"] >= 1

        # Exactness under failover: every accepted call executed
        # exactly once.  The journals hold one record per executed
        # call; their architectural sum must be bit-identical to what
        # the clients summed from their per-call responses — a dropped
        # call would make the journal sum smaller, a double-executed
        # one would make it larger.
        calls, journal_arch = journal_architectural_sum(str(tmp_path))
        assert calls == report.ok
        assert journal_arch == report.client_metrics

        # and the promoted slots recover clean after the fact
        for name in sorted(os.listdir(os.path.join(str(tmp_path), "slots"))):
            recovery = recover_slot(
                os.path.join(str(tmp_path), "slots", name)
            )
            assert recovery.engine.calls >= 0
