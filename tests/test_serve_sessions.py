"""Session virtualization: the LRU live-slot pool, park/hydrate paging,
and the exactness contract that makes paging architecturally invisible.

The properties pinned here are the ones the serving design leans on:

* LRU discipline — eviction order follows recency of use, and the
  live set never exceeds ``max_live``;
* park idempotence — park, hydrate, park again (with no intervening
  call) stores byte-identical blobs, so re-parking a clean tenant
  never rewrites the store;
* the hydrated-cold contract — a hydrated machine's attach memo is
  invalid, its first gate call re-fetches descriptors (SDW misses
  reappear) and lands exactly on the fresh-machine cold vector, and
  the next call is warm again;
* journal-tail dedup — a call journaled to the per-tenant tail but
  lost with a crashed live incarnation replays on hydrate, so the
  client's retry deduplicates against the replayed result;
* parked deltas stay small — the delta-vs-base encoding keeps a
  parked call_loop tenant under 10% of its full snapshot;
* the restore-equivalence matrix extends to park/hydrate cycles under
  every host-cache/jit knob combination.
"""

import pytest

from repro.serve.sessions import (
    SessionConfig,
    SessionPool,
    SessionStore,
    TENANT_MEMORY_WORDS,
)
from repro.serve.workers import GateCallEngine
from repro.sim.machine import Machine
from repro.sim.metrics import MetricsSnapshot
from repro.state.snapshot import apply_delta, canonical_bytes, decode_delta

#: host-tier knob combinations for the hydrate-equivalence matrix
#: (fast_path, block_tier, jit_tier) — the block tier requires the
#: fast path, and the trace-compile tier requires the block tier
KNOBS = [
    (False, False, False),
    (True, False, False),
    (True, True, False),
    (True, True, True),
]


def make_pool(tmp_path, max_live=2, store=None, **overrides):
    config = SessionConfig(
        max_live=max_live,
        store_dir=str(tmp_path / "store"),
        fsync_every=1,
        **overrides,
    )
    return SessionPool(config, store=store)


def job(user, call_id, count=3):
    return {
        "user": user,
        "ring": 4,
        "program": "call_loop",
        "args": {"count": count},
        "call_id": call_id,
    }


def reference_vectors(count=3):
    """(M_cold, M_warm) on a fresh, identically-configured engine."""
    engine = GateCallEngine(
        Machine(
            services=False,
            jit_tier_enabled=True,
            fast_gate=True,
            memory_words=TENANT_MEMORY_WORDS,
        )
    )
    cold = engine.run_job(job("ref", "r0", count))["metrics"]
    warm = engine.run_job(job("ref", "r1", count))["metrics"]
    return cold, warm


class TestLruPool:
    def test_eviction_follows_recency(self, tmp_path):
        pool = make_pool(tmp_path, max_live=2)
        pool.execute(job("a", "a0"))
        pool.execute(job("b", "b0"))
        assert list(pool.live) == ["a", "b"]

        # admitting c evicts the least recently used: a
        pool.execute(job("c", "c0"))
        assert list(pool.live) == ["b", "c"]
        assert pool.store.get("a") is not None
        assert pool.counters["evictions"] == 1

        # touching b makes c the LRU; admitting d evicts c
        pool.execute(job("b", "b1"))
        pool.execute(job("d", "d0"))
        assert list(pool.live) == ["b", "d"]
        assert pool.store.get("c") is not None
        assert pool.counters["evictions"] == 2

    def test_live_set_never_exceeds_max_live(self, tmp_path):
        pool = make_pool(tmp_path, max_live=3)
        for i in range(10):
            pool.execute(job(f"u{i}", f"c{i}"))
            assert len(pool.live) <= 3
        assert pool.counters["created"] == 10
        assert pool.counters["parks"] == 7

    def test_reuse_hydrates_parked_tenant(self, tmp_path):
        pool = make_pool(tmp_path, max_live=1)
        pool.execute(job("a", "a0"))
        pool.execute(job("b", "b0"))  # parks a
        out = pool.execute(job("a", "a1"))  # hydrates a, parks b
        assert out["session"]["admitted"] == "hydrated"
        assert out["session"]["cold"] is True
        assert pool.counters["hydrated"] == 1


class TestParkIdempotence:
    def test_park_hydrate_park_is_byte_identical(self, tmp_path):
        pool = make_pool(tmp_path, max_live=1)
        pool.execute(job("a", "a0"))
        pool.execute(job("a", "a1"))
        assert pool.park_user("a")
        first = pool.store.get("a")

        # hydrate without running anything, then park again
        tenant, admitted = pool._admit("a")
        assert admitted == "hydrated"
        assert pool.park_user("a")
        second = pool.store.get("a")
        assert first == second

    def test_dirty_tenant_reparks_to_new_bytes(self, tmp_path):
        pool = make_pool(tmp_path, max_live=1)
        pool.execute(job("a", "a0"))
        assert pool.park_user("a")
        first = pool.store.get("a")
        pool.execute(job("a", "a1"))
        assert pool.park_user("a")
        assert pool.store.get("a") != first


class TestHydratedColdContract:
    def test_first_call_after_hydrate_refetches_descriptors(self, tmp_path):
        """Satellite regression: the fast-gate attach memo must not
        leak across a park/hydrate cycle — the hydrated machine's first
        call pays the full cold vector (descriptor re-fetch: SDW misses
        reappear), then goes warm again."""
        m_cold, m_warm = reference_vectors()
        assert m_cold["sdw_misses"] > 0
        assert m_warm["sdw_misses"] == 0

        pool = make_pool(tmp_path, max_live=1)
        first = pool.execute(job("t", "t0"))
        warm = pool.execute(job("t", "t1"))
        assert first["metrics"] == m_cold
        assert warm["metrics"] == m_warm
        assert pool.park_user("t")

        rehydrated = pool.execute(job("t", "t2"))
        assert rehydrated["session"]["admitted"] == "hydrated"
        assert rehydrated["session"]["cold"] is True
        # bit-for-bit the fresh-machine cold vector, misses included
        assert rehydrated["metrics"] == m_cold
        assert pool.execute(job("t", "t3"))["metrics"] == m_warm

    def test_cold_warm_counters_track_the_split(self, tmp_path):
        pool = make_pool(tmp_path, max_live=1)
        pool.execute(job("t", "t0"))
        pool.execute(job("t", "t1"))
        pool.park_user("t")
        pool.execute(job("t", "t2"))
        assert pool.counters["cold_calls"] == 2
        assert pool.counters["warm_calls"] == 1


class TestJournalTailDedup:
    def test_retried_call_racing_a_park_deduplicates(self, tmp_path):
        """A call journaled to the tenant tail but never parked (the
        live incarnation crashed) replays on hydrate; the client's
        retry of that call_id then dedups to the replayed result."""
        store = SessionStore(str(tmp_path / "store"))
        pool = make_pool(tmp_path, max_live=1, store=store)
        pool.execute(job("u", "u0"))
        pool.park_user("u")  # parked image includes u0

        # the tenant comes back, runs one more call (journaled to the
        # tail), and the shard dies before the next park
        original = pool.execute(job("u", "u1"))
        assert original["session"]["admitted"] == "hydrated"
        del pool

        # a replacement shard hydrates: parked image + tail replay
        fresh = make_pool(tmp_path, max_live=1, store=store)
        retry = fresh.execute(job("u", "u1"))
        assert retry["deduplicated"] is True
        assert retry["payload"] == original["payload"]
        assert retry["metrics"] == original["metrics"]
        assert fresh.counters["replayed_tail_calls"] == 1
        assert fresh.counters["deduplicated"] == 1

    def test_clean_park_fences_the_old_tail(self, tmp_path):
        store = SessionStore(str(tmp_path / "store"))
        pool = make_pool(tmp_path, max_live=1, store=store)
        pool.execute(job("u", "u0"))
        pool.park_user("u")
        fresh = make_pool(tmp_path, max_live=1, store=store)
        out = fresh.execute(job("u", "u1"))
        # the parked image already contains u0 — nothing replays
        assert fresh.counters["replayed_tail_calls"] == 0
        assert not out.get("deduplicated")


class TestParkedDeltaSize:
    def test_parked_delta_under_ten_percent_of_full(self, tmp_path):
        pool = make_pool(tmp_path, max_live=2)
        for i in range(8):
            user = f"u{i % 4}"
            pool.execute(job(user, f"c{i}"))
        pool.park_all()
        stats = pool.stats()
        assert stats["parks"] >= 4
        assert 0 < stats["park_size_ratio"] < 0.10


class TestHydrateKnobMatrix:
    def test_park_hydrate_equivalent_under_every_knob_combo(self, tmp_path):
        """Extend the restore-equivalence matrix to park/hydrate: a
        parked tenant hydrated under any host-cache knob combination
        continues to bit-identical *architectural* figures (host-tier
        counters differ across combos by design — that's what the
        knobs toggle)."""

        def architectural(metrics):
            return {
                key: metrics[key] for key in MetricsSnapshot.ARCHITECTURAL
            }

        pool = make_pool(tmp_path / "paged", max_live=1)
        pool.execute(job("m", "m0"))
        pool.execute(job("m", "m1"))
        pool.park_user("m")
        blob = pool.store.get("m")
        envelope = decode_delta(blob)
        base = pool.store.base_by_digest(envelope["base_sha256"])
        snap = apply_delta(base, envelope)

        # the canonical continuation: hydrate with the snapshot's own
        # tier configuration, run two more calls (cold, then warm)
        reference = GateCallEngine.from_snapshot(snap)
        expected = [
            architectural(reference.run_job(job("m", call_id))["metrics"])
            for call_id in ("m2", "m3")
        ]

        for fast_path, block_tier, jit in KNOBS:
            engine = GateCallEngine.from_snapshot(
                snap,
                fast_path_enabled=fast_path,
                block_tier_enabled=block_tier,
                jit_tier_enabled=jit,
            )
            got = [
                architectural(engine.run_job(job("m", call_id))["metrics"])
                for call_id in ("m2", "m3")
            ]
            assert got == expected, (
                f"divergence with fast_path={fast_path} "
                f"block_tier={block_tier} jit={jit}"
            )


class TestBaseSharing:
    def test_parked_tenants_share_one_base_image(self, tmp_path):
        pool = make_pool(tmp_path, max_live=1)
        for user in ("a", "b", "c"):
            pool.execute(job(user, f"{user}0"))
        pool.park_all()
        digests = set()
        for user in ("a", "b", "c"):
            digests.add(decode_delta(pool.store.get(user))["base_sha256"])
        assert len(digests) == 1

    def test_totals_survive_eviction(self, tmp_path):
        pool = make_pool(tmp_path, max_live=1)
        total = MetricsSnapshot.zero()
        for i in range(4):
            out = pool.execute(job(f"u{i}", f"c{i}"))
            total = total.plus(MetricsSnapshot.from_dict(out["metrics"]))
        assert pool.total == total
        assert pool.calls == 4


class TestPrefetch:
    def test_prefetch_fills_free_slots_most_recent_first(self, tmp_path):
        pool = make_pool(tmp_path, max_live=3)
        for user in ("a", "b", "c"):
            pool.execute(job(user, f"{user}0"))
        pool.park_all()
        assert pool.prefetch(limit=2) == 2
        # c was parked last (park_all drains LRU-first), so it is the
        # best prediction; never more than the free-slot budget
        assert list(pool.live) == ["b", "c"]
        assert pool.counters["prefetch_hydrated"] == 2

    def test_prefetch_never_evicts_live_work(self, tmp_path):
        pool = make_pool(tmp_path, max_live=1)
        pool.execute(job("a", "a0"))
        pool.execute(job("b", "b0"))  # parks a; b live, pool full
        assert pool.prefetch(limit=4) == 0
        assert list(pool.live) == ["b"]

    def test_prefetched_tenant_counts_a_hit_then_behaves_normally(
        self, tmp_path
    ):
        m_cold, _ = reference_vectors()
        pool = make_pool(tmp_path, max_live=2)
        pool.execute(job("a", "a0"))
        pool.park_user("a")
        assert pool.prefetch(limit=1) == 1
        out = pool.execute(job("a", "a1"))
        assert out["session"]["prefetch_hit"] is True
        # prefetch hydration is exact: the call still pays (exactly)
        # the cold vector, it just pays it without the hydrate stall
        assert out["session"]["cold"] is True
        assert out["metrics"] == m_cold
        assert pool.counters["prefetch_hits"] == 1

    def test_prefetched_tenants_are_first_out(self, tmp_path):
        pool = make_pool(tmp_path, max_live=2)
        pool.execute(job("a", "a0"))
        pool.park_user("a")
        pool.execute(job("b", "b0"))
        assert pool.prefetch(limit=1) == 1  # a re-enters at the LRU head
        assert list(pool.live) == ["a", "b"]
        pool.execute(job("c", "c0"))  # evicts the prefetched a, not b
        assert list(pool.live) == ["b", "c"]
