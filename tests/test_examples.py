"""Every example script must run cleanly end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def _run(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    _run(path)
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates what it proved


def test_all_five_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "protected_subsystem",
        "layered_supervisor",
        "debug_ring5",
        "grading_sandbox",
        "hardware_vs_software_rings",
    } <= names
