"""Tests for the figure reproductions and the experiment harness."""

import pytest

from repro.analysis.decision_tables import (
    ALL_BRACKETS,
    call_decision_table,
    fetch_decision_table,
    read_write_decision_table,
    return_decision_table,
    summarize_outcomes,
    transfer_decision_table,
)
from repro.analysis.figures import (
    render_all_figures,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure9,
)
from repro.analysis.report import (
    crossing_cost_experiment,
    format_table,
    measure_cycles_per_call,
)
from repro.core.acl import RingBracketSpec


class TestDecisionTables:
    def test_all_brackets_count(self):
        """C(10,3) ordered triples over 8 rings = 120."""
        assert len(ALL_BRACKETS) == 120

    def test_fetch_table_complete(self):
        rows = fetch_decision_table()
        assert len(rows) == 120 * 2 * 8

    def test_fetch_table_no_execute_without_flag(self):
        for row in fetch_decision_table():
            if not row["execute_flag"]:
                assert not row["allowed"]

    def test_read_write_table_complete(self):
        assert len(read_write_decision_table()) == 120 * 4 * 8

    def test_transfer_table_never_allows_ring_change(self):
        for row in transfer_decision_table():
            if row["eff_ring"] != row["cur_ring"]:
                assert not row["allowed"]

    def test_call_table_unreachable_rows_marked(self):
        for row in call_decision_table():
            assert row["reachable"] == (row["eff_ring"] >= row["cur_ring"])

    def test_call_table_contains_every_outcome(self):
        census = summarize_outcomes(call_decision_table())
        assert set(census) == {
            "SAME_RING",
            "DOWNWARD",
            "TRAP_UPWARD_CALL",
            "FAULT_NO_EXECUTE",
            "FAULT_RING_RAISED",
            "FAULT_OUTSIDE_BRACKET",
            "FAULT_NOT_GATE",
        }

    def test_return_table_contains_every_outcome(self):
        census = summarize_outcomes(return_decision_table())
        assert set(census) == {
            "SAME_RING",
            "UPWARD",
            "TRAP_DOWNWARD_RETURN",
            "FAULT_NO_EXECUTE",
            "FAULT_EXECUTE_BRACKET",
        }


class TestFigureRenderings:
    def test_every_figure_renders(self):
        for render in (
            render_figure1,
            render_figure2,
            render_figure3,
            render_figure4,
            render_figure5,
            render_figure6,
            render_figure7,
            render_figure8,
            render_figure9,
        ):
            text = render()
            assert text.startswith("Figure")
            assert len(text) > 100

    def test_figure1_shows_brackets(self):
        text = render_figure1()
        assert "write bracket" in text
        assert "R1=4 R2=6" in text

    def test_figure2_shows_gate_extension(self):
        assert "gate extension rings 5..6" in render_figure2()

    def test_figure3_lists_formats(self):
        text = render_figure3()
        for name in ("SDW.word0", "INS", "IND", "PR", "IPR"):
            assert name in text

    def test_figure8_census_totals(self):
        text = render_figure8()
        assert "exhaustive census" in text

    def test_render_all_is_ordered(self):
        text = render_all_figures()
        positions = [text.index(f"Figure {n}") for n in range(1, 10)]
        assert positions == sorted(positions)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["a", "long header"], [["x", "1"], ["yy", "22"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["h"], [["v"]], title="T")
        assert text.splitlines()[0] == "T"


class TestCrossingCostExperiment:
    def test_marginal_cost_positive(self):
        cost = measure_cycles_per_call(
            True, RingBracketSpec.procedure(4), "tsame", n_small=4, n_large=12
        )
        assert cost > 0

    def test_experiment_shape_matches_paper(self):
        """The paper's claim, end to end: hardware makes the downward
        call nearly same-ring-priced; software rings pay an order of
        magnitude."""
        rows = crossing_cost_experiment()
        by_name = {row.scenario: row for row in rows}
        same = by_name["same-ring call+return"]
        down = by_name["downward call+upward return"]
        # same-ring: both machines identical
        assert same.hardware_cycles == same.software_cycles
        # hardware: downward within a few cycles of same-ring
        assert down.hardware_cycles <= same.hardware_cycles + 5
        # software: crossing costs many times more
        assert down.software_cycles > 5 * down.hardware_cycles
