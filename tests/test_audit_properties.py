"""Property tests over random ACL worlds for the auditor and accounting."""

from hypothesis import given, settings, strategies as st

from repro.analysis.audit import audit, capability_matrix
from repro.core.acl import AclEntry, RingBracketSpec
from repro.core.rings import check_read, check_write
from repro.krnl.filesystem import FileSystem
from repro.krnl.users import User
from repro.mem.segment import SegmentImage

rings = st.integers(0, 7)


@st.composite
def specs(draw):
    triple = sorted(draw(st.tuples(rings, rings, rings)))
    return RingBracketSpec(
        r1=triple[0],
        r2=triple[1],
        r3=triple[2],
        read=draw(st.booleans()),
        write=draw(st.booleans()),
        execute=draw(st.booleans()),
        gate=draw(st.integers(0, 3)),
    )


@st.composite
def worlds(draw):
    fs = FileSystem()
    users = [User("alice"), User("bob")]
    n_segments = draw(st.integers(1, 5))
    for index in range(n_segments):
        acl = []
        for user in users:
            if draw(st.booleans()):
                acl.append(AclEntry(user.name, draw(specs())))
        if not acl:
            acl.append(AclEntry("*", draw(specs())))
        image = SegmentImage.zeros(f"s{index}", 4)
        image.gate_count = draw(st.integers(0, 2))
        fs.create(f">w>s{index}", image, users[0], acl=acl)
    return fs, users


class TestAuditProperties:
    @settings(max_examples=50, deadline=None)
    @given(worlds())
    def test_audit_never_crashes_and_theorem_holds(self, world):
        fs, users = world
        report = audit(fs, users)
        assert report.injection_theorem_holds

    @settings(max_examples=50, deadline=None)
    @given(worlds())
    def test_capability_matrix_agrees_with_policy(self, world):
        """Every capability row must be re-derivable from the matched
        ACL entry's brackets — the matrix adds nothing."""
        fs, users = world
        for cap in capability_matrix(fs, users):
            entry = fs.get(cap.path).match(cap.user)
            assert entry is not None
            spec = entry.spec
            assert cap.read == check_read(cap.ring, spec.brackets, spec.read)
            assert cap.write == check_write(cap.ring, spec.brackets, spec.write)

    @settings(max_examples=50, deadline=None)
    @given(worlds())
    def test_capabilities_monotone_in_ring(self, world):
        """For read/write, a capability at ring m implies it at every
        ring below — the nested-subset property surfaces in the audit."""
        fs, users = world
        rows = capability_matrix(fs, users)
        by_key = {}
        for cap in rows:
            by_key[(cap.path, cap.user, cap.ring)] = cap
        for cap in rows:
            for lower in range(cap.ring):
                lower_cap = by_key.get((cap.path, cap.user, lower))
                if cap.read:
                    assert lower_cap is not None and lower_cap.read
                if cap.write:
                    assert lower_cap is not None and lower_cap.write


class TestAccounting:
    def test_job_cycles_attributed(self, machine):
        """Per-job cycle accounting sums (nearly) to the processor's
        clock; the shortfall is dispatch overhead, charged to the
        system."""
        user = machine.add_user("u")
        for i, count in ((0, 10), (1, 30)):
            machine.store_program(
                f">t>w{i}",
                f"""
        .seg    w{i}
main::  lda     ={count}
loop:   sba     =1
        tnz     loop
        halt
""",
                acl=[AclEntry("*", RingBracketSpec.procedure(4))],
            )
        pa = machine.login(user)
        pb = machine.login(machine.add_user("v"))
        machine.initiate(pa, ">t>w0")
        machine.initiate(pb, ">t>w1")
        machine.processor.reset_counters()
        scheduler = machine.make_scheduler(quantum=9)
        ja = scheduler.add(pa, "w0$main", ring=4)
        jb = scheduler.add(pb, "w1$main", ring=4)
        scheduler.run()
        assert ja.cycles > 0 and jb.cycles > 0
        assert jb.cycles > ja.cycles  # three times the work
        accounted = ja.cycles + jb.cycles
        assert accounted <= machine.processor.cycles
        # the gap is exactly the dispatch overhead
        from repro.krnl.scheduler import CONTEXT_SWITCH_CYCLES

        gap = machine.processor.cycles - accounted
        assert gap == scheduler.context_switches * CONTEXT_SWITCH_CYCLES
