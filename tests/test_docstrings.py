"""Documentation meta-test: every public item carries a docstring.

The documentation deliverable is enforced, not aspirational: this test
imports every module in the package and asserts that each public
module, class, function, and method is documented.  Private names
(leading underscore), dunders other than ``__init__``-bearing classes,
and enum members are exempt.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__main__" not in name
)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} has no module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    # property-style one-liners and trivial overrides are
                    # still required to say what they are
                    missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"


def test_every_source_file_is_importable():
    src = pathlib.Path(repro.__file__).parent
    count = sum(1 for _ in src.rglob("*.py"))
    # walk_packages found them all (no orphaned files)
    assert len(MODULES) + 2 >= count  # + package __init__ + __main__
