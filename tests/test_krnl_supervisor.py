"""Unit tests for the supervisor: activation, initiation, trap dispatch."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.errors import AccessDenied, ConfigurationError, LinkError
from repro.krnl.process import FIRST_FREE_SEGNO
from repro.krnl.supervisor import Supervisor
from repro.mem.physical import PhysicalMemory
from repro.mem.segment import SegmentImage


@pytest.fixture
def sup():
    return Supervisor(PhysicalMemory(1 << 17))


@pytest.fixture
def alice(sup):
    return sup.users.register("alice")


def store(sup, path, name, owner, acl=None, words=(0, 0)):
    image = SegmentImage.from_values(name, list(words))
    sup.fs.create(path, image, owner=owner, acl=acl or [
        AclEntry("*", RingBracketSpec.data(4))
    ])
    return image


class TestSegnoAllocation:
    def test_starts_after_stacks(self, sup):
        assert sup.next_segno() == FIRST_FREE_SEGNO

    def test_monotone(self, sup):
        first = sup.next_segno()
        assert sup.next_segno() == first + 1


class TestActivation:
    def test_activate_places_segment(self, sup, alice):
        store(sup, ">x", "x", alice, words=[7, 8])
        active = sup.activate(">x")
        assert sup.memory.peek_block(active.placed.addr, 2) == [7, 8]

    def test_activate_is_idempotent(self, sup, alice):
        store(sup, ">x", "x", alice)
        first = sup.activate(">x")
        assert sup.activate(">x") is first

    def test_global_segnos_unique(self, sup, alice):
        store(sup, ">x", "x", alice)
        store(sup, ">y", "y", alice)
        assert sup.activate(">x").segno != sup.activate(">y").segno

    def test_duplicate_names_rejected_at_activation(self, sup, alice):
        store(sup, ">a>seg", "seg", alice)
        store(sup, ">b>seg", "seg", alice)
        sup.activate(">a>seg")
        with pytest.raises(ConfigurationError):
            sup.activate(">b>seg")

    def test_resolve_name_scans_filesystem(self, sup, alice):
        store(sup, ">deep>dir>thing", "thing", alice)
        active = sup.resolve_name("thing")
        assert active.path == ">deep>dir>thing"

    def test_resolve_name_missing(self, sup):
        with pytest.raises(LinkError):
            sup.resolve_name("ghost")

    def test_resolve_name_ambiguous(self, sup, alice):
        store(sup, ">a>dup", "dup_a", alice)
        store(sup, ">b>dup", "dup_b", alice)
        with pytest.raises(LinkError):
            sup.resolve_name("dup")


class TestInitiation:
    def test_initiate_builds_sdw_from_acl(self, sup, alice):
        spec = RingBracketSpec(r1=2, r2=3, r3=4, read=True, execute=True)
        store(sup, ">x", "x", alice, acl=[AclEntry("alice", spec)])
        process = sup.create_process(alice)
        segno = sup.initiate(process, ">x")
        sdw = process.dseg.get(segno)
        assert (sdw.r1, sdw.r2, sdw.r3) == (2, 3, 4)
        assert sdw.read and sdw.execute and not sdw.write

    def test_initiate_denied_without_acl_match(self, sup, alice):
        bob = sup.users.register("bob")
        store(sup, ">x", "x", alice, acl=[AclEntry("alice", RingBracketSpec.data(4))])
        process = sup.create_process(bob)
        with pytest.raises(AccessDenied):
            sup.initiate(process, ">x")

    def test_per_user_brackets_differ(self, sup, alice):
        """The same active segment can carry different SDW constraints
        in different processes — ACLs are per user (paper p. 35)."""
        bob = sup.users.register("bob")
        store(
            sup,
            ">x",
            "x",
            alice,
            acl=[
                AclEntry("alice", RingBracketSpec.data(6)),
                AclEntry("bob", RingBracketSpec.data(2, write=False)),
            ],
        )
        pa = sup.create_process(alice)
        pb = sup.create_process(bob)
        sa = sup.initiate(pa, ">x")
        sb = sup.initiate(pb, ">x")
        assert sa == sb  # same global segment number
        assert pa.dseg.get(sa).write
        assert not pb.dseg.get(sb).write
        assert pa.dseg.get(sa).addr == pb.dseg.get(sb).addr  # shared storage

    def test_gate_count_defaults_to_image(self, sup, alice):
        image = SegmentImage.from_values("g", [0, 0, 0])
        image.gate_count = 2
        sup.fs.create(
            ">g", image, owner=alice,
            acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=5))],
        )
        process = sup.create_process(alice)
        segno = sup.initiate(process, ">g")
        assert process.dseg.get(segno).gate == 2

    def test_acl_gate_count_overrides(self, sup, alice):
        image = SegmentImage.from_values("g", [0, 0, 0])
        image.gate_count = 3
        sup.fs.create(
            ">g", image, owner=alice,
            acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=5, gate=1))],
        )
        process = sup.create_process(alice)
        segno = sup.initiate(process, ">g")
        assert process.dseg.get(segno).gate == 1

    def test_initiate_under_alias(self, sup, alice):
        store(sup, ">x", "x", alice)
        process = sup.create_process(alice)
        sup.initiate(process, ">x", name="alias")
        assert process.segno_of("alias") == sup.activate(">x").segno


class TestTrapDispatch:
    def test_unhandled_fault_recorded_and_aborted(self, sup, alice):
        process = sup.create_process(alice)
        from repro.cpu.processor import Processor

        proc = Processor(sup.memory, process.dbr)
        sup.attach(proc, process)
        fault = Fault(FaultCode.ACV_NO_READ, segno=9, wordno=0)
        assert sup.handle_fault(proc, process, fault) == "abort"
        assert sup.aborted_faults == [fault]

    def test_console_io(self, sup, alice):
        process = sup.create_process(alice)
        from repro.cpu.processor import Processor

        proc = Processor(sup.memory, process.dbr)
        sup.attach(proc, process)
        proc.registers.set_a(99)
        proc.connect_io(1)
        assert sup.console_values() == [99]
        assert sup.console[0].ring == 0

    def test_non_console_channel_ignored(self, sup, alice):
        process = sup.create_process(alice)
        from repro.cpu.processor import Processor

        proc = Processor(sup.memory, process.dbr)
        sup.attach(proc, process)
        proc.connect_io(2)
        assert sup.console_values() == []
