"""Shared test utilities.

``BareMachine`` assembles a minimal hardware-only configuration — no
supervisor, no file system — so unit tests can poke exact SDWs and
observe exact faults.  ``asm_inst`` builds single instruction words
without going through the assembler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cpu.isa import Op
from repro.cpu.processor import CostModel, Processor
from repro.cpu.sdwcache import SDWCache
from repro.formats.indirect import IndirectWord
from repro.formats.instruction import Instruction, TAG_IMMEDIATE, TAG_INDEX_A, TAG_NONE
from repro.formats.sdw import SDW
from repro.mem.descriptor import DescriptorSegment
from repro.mem.physical import PhysicalMemory


def asm_inst(
    op: Op,
    offset: int = 0,
    indirect: bool = False,
    pr: Optional[int] = None,
    immediate: bool = False,
    indexed: bool = False,
) -> int:
    """Build one packed instruction word."""
    tag = TAG_NONE
    if immediate:
        tag = TAG_IMMEDIATE
    elif indexed:
        tag = TAG_INDEX_A
    return Instruction(
        opcode=op.number,
        offset=offset,
        indirect=indirect,
        prflag=pr is not None,
        prnum=pr or 0,
        tag=tag,
    ).pack()


def ind_word(segno: int, wordno: int, ring: int = 0, chained: bool = False) -> int:
    """Build one packed indirect word."""
    return IndirectWord(
        segno=segno, wordno=wordno, ring=ring, indirect=chained
    ).pack()


class BareMachine:
    """Physical memory + descriptor segment + processor, nothing else.

    Faults propagate to the test as :class:`repro.cpu.faults.Fault`
    because no fault handler is installed.
    """

    def __init__(
        self,
        memory_words: int = 1 << 16,
        descriptor_bound: int = 64,
        **proc_kwargs,
    ):
        self.memory = PhysicalMemory(memory_words)
        self.dseg, self.dbr = DescriptorSegment.allocate(
            self.memory, bound=descriptor_bound
        )
        self.proc = Processor(self.memory, self.dbr, **proc_kwargs)

    @property
    def regs(self):
        return self.proc.registers

    def add_segment(
        self,
        segno: int,
        words: Sequence[int] = (),
        size: Optional[int] = None,
        r1: int = 0,
        r2: int = 7,
        r3: int = 7,
        read: bool = True,
        write: bool = True,
        execute: bool = True,
        gate: int = 0,
        present: bool = True,
    ) -> SDW:
        """Allocate, load, and describe one segment."""
        bound = size if size is not None else max(len(words), 1)
        block = self.memory.allocate(bound)
        if words:
            self.memory.load_image(block.addr, list(words))
        sdw = SDW(
            addr=block.addr,
            bound=bound,
            r1=r1,
            r2=r2,
            r3=r3,
            read=read,
            write=write,
            execute=execute,
            gate=gate,
            present=present,
        )
        self.dseg.set(segno, sdw)
        return sdw

    def add_code(self, segno: int, words: Sequence[int], ring: int = 4, **kw) -> SDW:
        """A pure-procedure segment executing at exactly ``ring``."""
        kw.setdefault("r1", ring)
        kw.setdefault("r2", ring)
        kw.setdefault("r3", ring)
        kw.setdefault("read", True)
        kw.setdefault("write", False)
        return self.add_segment(segno, words=words, execute=True, **kw)

    def add_data(self, segno: int, words: Sequence[int], ring: int = 7, **kw) -> SDW:
        """A data segment readable/writable up to ``ring``."""
        kw.setdefault("r1", ring)
        kw.setdefault("r2", ring)
        kw.setdefault("r3", ring)
        return self.add_segment(segno, words=words, execute=False, **kw)

    def start(self, segno: int, wordno: int = 0, ring: int = 4) -> None:
        """Point the IPR, with PR rings satisfying the machine invariant.

        Pointer registers are initialised to the conventional per-ring
        stack base (segment number = ring number, the simple stack rule).
        """
        for pr in self.regs.prs:
            pr.load(ring, 0, ring)
        self.regs.crr = ring
        self.regs.ipr.set(ring, segno, wordno)

    def step(self) -> None:
        self.proc.step()

    def run(self, max_steps: int = 10_000) -> int:
        return self.proc.run(max_steps=max_steps)

    def seg_word(self, segno: int, wordno: int) -> int:
        """Read a segment word via the descriptor (uncharged)."""
        sdw = self.dseg.get(segno)
        return self.memory.peek_block(sdw.addr + wordno, 1)[0]


def halt_word() -> int:
    return asm_inst(Op.HALT)
