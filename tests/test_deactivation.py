"""Segment deactivation and transparent reactivation."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


@pytest.fixture
def system(machine):
    user = machine.add_user("u")
    machine.store_data(
        ">t>counter", [100], acl=[AclEntry("*", RingBracketSpec.data(4))]
    )
    machine.store_program(
        ">t>prog",
        """
        .seg    prog
main::  aos     l_c,*
        aos     l_c,*
        lda     l_c,*
        halt
l_c:    .its    counter
""",
        acl=USER_ACL,
    )
    process = machine.login(user)
    machine.initiate(process, ">t>prog")
    return machine, process


class TestDeactivation:
    def test_deactivate_frees_memory(self, system):
        machine, process = system
        machine.initiate(process, ">t>counter")
        free_before = machine.memory.free_words()
        assert machine.supervisor.deactivate(
            ">t>counter", processors=[machine.processor]
        )
        assert machine.memory.free_words() > free_before

    def test_deactivate_inactive_is_false(self, system):
        machine, process = system
        machine.store_data(
            ">t>idle", [0], acl=[AclEntry("*", RingBracketSpec.data(4))]
        )
        assert not machine.supervisor.deactivate(">t>idle")  # never active

    def test_dirty_contents_written_back(self, system):
        """Deactivation flushes modified words to the backing store, so
        reactivation sees the program's writes."""
        machine, process = system
        result = machine.run(process, "prog$main", ring=4)
        assert result.a == 102
        machine.supervisor.deactivate(">t>counter", processors=[machine.processor])
        # run again: the counter resumes from 102, not from its original 100
        result = machine.run(process, "prog$main", ring=4)
        assert result.a == 104

    def test_reactivation_is_transparent_to_running_program(self, system):
        """Evicting a segment mid-run costs traps, not correctness."""
        machine, process = system
        machine.start(process, "prog$main", ring=4)
        machine.processor.step()  # first AOS (demand-initiates counter)
        machine.supervisor.deactivate(">t>counter", processors=[machine.processor])
        from repro.errors import MachineHalted

        with pytest.raises(MachineHalted):
            for _ in range(20):
                machine.processor.step()
        # the program finished with the correct value despite the eviction
        assert machine.processor.registers.a == 102

    def test_reactivation_reuses_segment_number(self, system):
        """Global numbering requires the segno to survive eviction —
        link words in other segments hold it."""
        machine, process = system
        machine.initiate(process, ">t>counter")
        before = machine.supervisor.activate(">t>counter").segno
        machine.supervisor.deactivate(">t>counter", processors=[machine.processor])
        after = machine.supervisor.activate(">t>counter").segno
        assert before == after

    def test_missing_segment_faults_counted(self, system):
        machine, process = system
        result = machine.run(process, "prog$main", ring=4)
        first_faults = result.faults
        machine.supervisor.deactivate(">t>counter", processors=[machine.processor])
        result = machine.run(process, "prog$main", ring=4)
        assert result.faults >= 1  # the reactivation trap


class TestDeactivationVsLazyLinking:
    def test_segment_with_unsnapped_links_not_evictable(self):
        """Evicting a lazily linked segment before its links snap would
        leave the linkage registry pointing at freed storage; the
        supervisor refuses."""
        from repro.sim.machine import Machine

        machine = Machine(lazy_linking=True, services=False)
        user = machine.add_user("u")
        machine.store_data(
            ">t>target", [1], acl=[AclEntry("*", RingBracketSpec.data(4))]
        )
        machine.store_program(
            ">t>lazyprog",
            """
        .seg    lazyprog
main::  lda     l_t,*
        halt
l_t:    .its    target
""",
            acl=USER_ACL,
        )
        process = machine.login(user)
        machine.initiate(process, ">t>lazyprog")
        # link not yet referenced: eviction refused
        assert not machine.supervisor.deactivate(">t>lazyprog")
        # after the run the link is snapped; eviction proceeds
        machine.run(process, "lazyprog$main", ring=4)
        assert machine.supervisor.deactivate(
            ">t>lazyprog", processors=[machine.processor]
        )
