"""Unit tests for the instruction implementations (operand groups)."""

import pytest

from repro.cpu.faults import Fault, FaultCode
from repro.cpu.isa import Op
from repro.errors import MachineHalted
from repro.formats.pointerfmt import PackedPointer

from tests.helpers import BareMachine, asm_inst, halt_word, ind_word


def run_one(bm, word, ring=4, segno=8, extra=None):
    """Place one instruction (plus HALT) in segment ``segno`` and run it.

    Leaves pointer registers and CRR untouched so tests can pre-load
    them; only the IPR is pointed at the instruction.
    """
    base = bm.dseg.get(segno).addr
    bm.memory.load_image(base, [word, halt_word()] + (extra or []))
    bm.regs.ipr.set(ring, segno, 0)
    with pytest.raises(MachineHalted):
        while True:
            bm.step()


@pytest.fixture
def bm():
    machine = BareMachine()
    machine.add_code(8, [0] * 32, ring=4)
    machine.add_data(9, [100, 200, 300, 0, 0, 0], ring=7)
    machine.start(8, 0, ring=4)
    return machine


class TestReadGroup:
    def test_lda_immediate(self, bm):
        run_one(bm, asm_inst(Op.LDA, offset=42, immediate=True))
        assert bm.regs.a == 42

    def test_lda_memory(self, bm):
        bm.regs.pr(1).load(9, 0, 4)
        run_one(bm, asm_inst(Op.LDA, offset=1, pr=1))
        assert bm.regs.a == 200

    def test_ldq(self, bm):
        bm.regs.pr(1).load(9, 2, 4)
        run_one(bm, asm_inst(Op.LDQ, offset=0, pr=1))
        assert bm.regs.q == 300

    def test_ada(self, bm):
        bm.regs.set_a(1)
        run_one(bm, asm_inst(Op.ADA, offset=41, immediate=True))
        assert bm.regs.a == 42

    def test_ada_wraps(self, bm):
        bm.regs.set_a(2**36 - 1)
        run_one(bm, asm_inst(Op.ADA, offset=1, immediate=True))
        assert bm.regs.a == 0

    def test_sba(self, bm):
        bm.regs.set_a(50)
        run_one(bm, asm_inst(Op.SBA, offset=8, immediate=True))
        assert bm.regs.a == 42

    def test_sba_borrows(self, bm):
        bm.regs.set_a(0)
        run_one(bm, asm_inst(Op.SBA, offset=1, immediate=True))
        assert bm.regs.a == 2**36 - 1

    def test_ana_ora_era(self, bm):
        bm.regs.set_a(0b1100)
        run_one(bm, asm_inst(Op.ANA, offset=0b1010, immediate=True))
        assert bm.regs.a == 0b1000
        bm.regs.set_a(0b1100)
        run_one(bm, asm_inst(Op.ORA, offset=0b1010, immediate=True))
        assert bm.regs.a == 0b1110
        bm.regs.set_a(0b1100)
        run_one(bm, asm_inst(Op.ERA, offset=0b1010, immediate=True))
        assert bm.regs.a == 0b0110

    def test_read_requires_read_flag(self, bm):
        bm.add_segment(10, [5], read=False)
        bm.regs.pr(1).load(10, 0, 4)
        with pytest.raises(Fault) as excinfo:
            run_one(bm, asm_inst(Op.LDA, offset=0, pr=1))
        assert excinfo.value.code is FaultCode.ACV_NO_READ

    def test_read_validated_at_effective_ring(self, bm):
        bm.add_data(10, [5], ring=3)  # readable only to ring 3
        bm.regs.pr(1).load(10, 0, 4)  # but the pointer carries ring 4
        with pytest.raises(Fault) as excinfo:
            run_one(bm, asm_inst(Op.LDA, offset=0, pr=1))
        assert excinfo.value.code is FaultCode.ACV_READ_BRACKET


class TestWriteGroup:
    def test_sta(self, bm):
        bm.regs.set_a(77)
        bm.regs.pr(1).load(9, 3, 4)
        run_one(bm, asm_inst(Op.STA, offset=0, pr=1))
        assert bm.seg_word(9, 3) == 77

    def test_stq(self, bm):
        bm.regs.set_q(88)
        bm.regs.pr(1).load(9, 4, 4)
        run_one(bm, asm_inst(Op.STQ, offset=0, pr=1))
        assert bm.seg_word(9, 4) == 88

    def test_stz(self, bm):
        bm.regs.pr(1).load(9, 0, 4)
        run_one(bm, asm_inst(Op.STZ, offset=0, pr=1))
        assert bm.seg_word(9, 0) == 0

    def test_aos_increments(self, bm):
        bm.regs.pr(1).load(9, 1, 4)
        run_one(bm, asm_inst(Op.AOS, offset=0, pr=1))
        assert bm.seg_word(9, 1) == 201

    def test_write_requires_write_flag(self, bm):
        bm.add_segment(10, [0], write=False)
        bm.regs.pr(1).load(10, 0, 4)
        with pytest.raises(Fault) as excinfo:
            run_one(bm, asm_inst(Op.STA, offset=0, pr=1))
        assert excinfo.value.code is FaultCode.ACV_NO_WRITE

    def test_write_validated_at_effective_ring(self, bm):
        bm.add_data(10, [0], ring=3)
        bm.regs.pr(1).load(10, 0, 4)
        with pytest.raises(Fault) as excinfo:
            run_one(bm, asm_inst(Op.STA, offset=0, pr=1))
        assert excinfo.value.code is FaultCode.ACV_WRITE_BRACKET

    def test_aos_needs_both_permissions(self, bm):
        bm.add_segment(10, [0], read=False, write=True)
        bm.regs.pr(1).load(10, 0, 4)
        with pytest.raises(Fault) as excinfo:
            run_one(bm, asm_inst(Op.AOS, offset=0, pr=1))
        assert excinfo.value.code is FaultCode.ACV_NO_READ

    def test_spr_stores_pointer_as_indirect_word(self, bm):
        bm.regs.pr(2).load(9, 5, 6)
        bm.regs.pr(1).load(9, 0, 4)
        run_one(bm, asm_inst(Op.SPR2, offset=0, pr=1))
        stored = PackedPointer.unpack(bm.seg_word(9, 0))
        assert (stored.segno, stored.wordno, stored.ring) == (9, 5, 6)


class TestEAPGroup:
    def test_eap_loads_from_tpr(self, bm):
        run_one(bm, asm_inst(Op.EAP3, offset=7))
        pr = bm.regs.pr(3)
        assert (pr.segno, pr.wordno, pr.ring) == (8, 7, 4)

    def test_eap_needs_no_access(self, bm):
        """EAP performs no validation — the target may be unreadable."""
        bm.add_segment(10, [0], read=False, write=False, execute=False)
        bm.regs.pr(1).load(10, 3, 4)
        run_one(bm, asm_inst(Op.EAP2, offset=0, pr=1))
        assert bm.regs.pr(2).segno == 10

    def test_eap_transfers_effective_ring(self, bm):
        bm.regs.pr(1).load(9, 0, 6)
        run_one(bm, asm_inst(Op.EAP2, offset=0, pr=1))
        assert bm.regs.pr(2).ring == 6

    def test_eap_through_indirect_word_takes_its_ring(self, bm):
        """Re-basing an argument pointer preserves the validation ring
        (paper p. 33)."""
        # the pointer lives in a segment writable only up to ring 4, so
        # only the indirect word's own RING field (5) raises the level
        bm.add_data(11, [ind_word(9, 1, ring=5)], ring=4)
        bm.regs.pr(1).load(11, 0, 4)
        run_one(bm, asm_inst(Op.EAP2, offset=0, pr=1, indirect=True))
        pr = bm.regs.pr(2)
        assert (pr.segno, pr.wordno, pr.ring) == (9, 1, 5)

    def test_eap_immediate_is_illegal(self, bm):
        with pytest.raises(Fault) as excinfo:
            run_one(bm, asm_inst(Op.EAP0, offset=1, immediate=True))
        assert excinfo.value.code is FaultCode.ILLEGAL_OPCODE


class TestMiscellany:
    def test_nop(self, bm):
        run_one(bm, asm_inst(Op.NOP))

    def test_halt_raises_machine_halted(self, bm):
        base = bm.dseg.get(8).addr
        bm.memory.load_image(base, [halt_word()])
        bm.start(8, 0, ring=4)
        with pytest.raises(MachineHalted):
            bm.step()

    def test_ldcr_reads_caller_ring_register(self, bm):
        bm.regs.crr = 6
        run_one(bm, asm_inst(Op.LDCR))
        assert bm.regs.a == 6

    def test_ars(self, bm):
        bm.regs.set_a(0b1100)
        run_one(bm, asm_inst(Op.ARS, offset=2))
        assert bm.regs.a == 0b11

    def test_als_drops_high_bits(self, bm):
        bm.regs.set_a(1 << 35)
        run_one(bm, asm_inst(Op.ALS, offset=1))
        assert bm.regs.a == 0

    def test_illegal_opcode_faults(self, bm):
        from repro.formats.instruction import Instruction

        with pytest.raises(Fault) as excinfo:
            run_one(bm, Instruction(opcode=0o777).pack())
        assert excinfo.value.code is FaultCode.ILLEGAL_OPCODE


class TestPlainTransfers:
    def test_tra(self, bm):
        base = bm.dseg.get(8).addr
        bm.memory.load_image(
            base,
            [
                asm_inst(Op.TRA, offset=3),
                halt_word(),  # skipped
                halt_word(),  # skipped
                asm_inst(Op.LDA, offset=9, immediate=True),
                halt_word(),
            ],
        )
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted
        assert bm.regs.a == 9

    def test_tze_taken_and_not_taken(self, bm):
        base = bm.dseg.get(8).addr
        program = [
            asm_inst(Op.TZE, offset=3),
            asm_inst(Op.LDA, offset=1, immediate=True),
            halt_word(),
            asm_inst(Op.LDA, offset=2, immediate=True),
            halt_word(),
        ]
        bm.memory.load_image(base, program)
        bm.regs.set_a(0)
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted
        assert bm.regs.a == 2  # branch taken

        bm.regs.set_a(5)
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted
        assert bm.regs.a == 1  # branch not taken

    def test_tnz(self, bm):
        base = bm.dseg.get(8).addr
        bm.memory.load_image(
            base,
            [
                asm_inst(Op.TNZ, offset=2),
                halt_word(),
                asm_inst(Op.LDA, offset=3, immediate=True),
                halt_word(),
            ],
        )
        bm.regs.set_a(1)
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted
        assert bm.regs.a == 3

    def test_tmi_tpl(self, bm):
        base = bm.dseg.get(8).addr
        bm.memory.load_image(
            base,
            [
                asm_inst(Op.TMI, offset=2),
                halt_word(),
                asm_inst(Op.LDA, offset=7, immediate=True),
                halt_word(),
            ],
        )
        bm.regs.set_a(1 << 35)  # negative
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted
        assert bm.regs.a == 7

    def test_transfer_to_other_segment_same_ring(self, bm):
        bm.add_code(10, [asm_inst(Op.LDA, offset=5, immediate=True), halt_word()], ring=4)
        base = bm.dseg.get(8).addr
        base10_ptr = ind_word(10, 0)
        bm.memory.load_image(base, [asm_inst(Op.TRA, offset=2, indirect=True), halt_word(), base10_ptr])
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted
        assert bm.regs.a == 5
        assert bm.regs.ipr.segno == 10

    def test_transfer_refuses_ring_change(self, bm):
        """A plain transfer whose effective ring was raised faults."""
        bm.add_code(10, [halt_word()], ring=4)
        base = bm.dseg.get(8).addr
        bm.memory.load_image(
            base,
            [asm_inst(Op.TRA, offset=2, indirect=True), halt_word(), ind_word(10, 0, ring=6)],
        )
        bm.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bm.run()
        assert excinfo.value.code is FaultCode.ACV_TRANSFER_RING

    def test_transfer_advance_check_catches_bad_target(self, bm):
        """The advance check reports the violation at the transfer, not
        at the subsequent fetch (debuggability, paper p. 28)."""
        bm.add_data(10, [0], ring=7)  # not executable
        base = bm.dseg.get(8).addr
        bm.memory.load_image(
            base, [asm_inst(Op.TRA, offset=2, indirect=True), halt_word(), ind_word(10, 0)]
        )
        bm.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bm.run()
        assert excinfo.value.code is FaultCode.ACV_NO_EXECUTE
        # fault is attributed to the TRA instruction's location
        assert excinfo.value.at_segno == 8
        assert excinfo.value.at_wordno == 0

    def test_not_taken_branch_still_forms_address(self, bm):
        """EA formation happens regardless of the condition, so a bad
        pointer in a not-taken branch still faults (hardware realism)."""
        base = bm.dseg.get(8).addr
        bm.memory.load_image(
            base,
            [asm_inst(Op.TZE, offset=50), halt_word()],  # offset 50 > bound? bound=32
        )
        bm.regs.set_a(1)  # condition false
        bm.start(8, 0, ring=4)
        bm.run()  # direct offsets are not validated until used
        assert bm.proc.halted
