"""The ring gateway end to end: sessions, calls, backpressure, drain.

Every test spins up a real asyncio gateway on an ephemeral port with the
thread worker backend (fast startup, no pickling) and talks to it over
an actual TCP connection — the wire format is part of the contract.
"""

import asyncio
import json

from repro.serve.admission import RingPolicy
from repro.serve.gateway import GatewayConfig, RingGateway, _percentile
from repro.serve.loadgen import run_load
from repro.serve.protocol import ErrorCode
from repro.serve.workers import execute_gate_call

#: a compute burst long enough (hundreds of ms even with the superblock
#: tier on) to still be in flight when a competing request arrives
SLOW_ARGS = {"n": 200000}


def gateway_config(**overrides):
    defaults = dict(
        port=0,
        workers=1,
        backend="thread",
        call_timeout=30.0,
        drain_timeout=30.0,
        default_policy=RingPolicy(rate=None, max_pending=64),
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


class Client:
    """Minimal raw JSON-lines client for exact protocol assertions."""

    def __init__(self, port):
        self.port = port
        self.reader = None
        self.writer = None

    async def connect(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        return self

    async def send_raw(self, data: bytes):
        self.writer.write(data)
        await self.writer.drain()

    async def request(self, **message):
        await self.send_raw(json.dumps(message).encode() + b"\n")
        return await self.read()

    async def read(self):
        line = await self.reader.readline()
        assert line, "gateway closed the connection unexpectedly"
        return json.loads(line)

    async def hello(self, user="alice", ring=4):
        response = await self.request(verb="hello", user=user, ring=ring)
        assert response["ok"], response
        return response

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def run(coro):
    return asyncio.run(coro)


async def with_gateway(config, body):
    gateway = RingGateway(config)
    await gateway.start()
    try:
        return await body(gateway)
    finally:
        await gateway.stop()


class TestSessions:
    def test_call_requires_hello(self):
        async def body(gateway):
            client = await Client(gateway.port).connect()
            response = await client.request(
                verb="call", id=1, program="echo", args={}
            )
            assert not response["ok"]
            assert response["error"] == ErrorCode.AUTH_REQUIRED
            assert response["id"] == 1
            await client.close()

        run(with_gateway(gateway_config(), body))

    def test_hello_validates_ring_and_user(self):
        async def body(gateway):
            client = await Client(gateway.port).connect()
            for bad in (
                {"verb": "hello", "user": "a", "ring": 0},
                {"verb": "hello", "user": "a", "ring": 6},
                {"verb": "hello", "user": "a", "ring": True},
                {"verb": "hello", "user": "", "ring": 4},
                {"verb": "hello", "ring": 4},
            ):
                response = await client.request(**bad)
                assert not response["ok"], bad
                assert response["error"] == ErrorCode.BAD_REQUEST
            assert (await client.hello("bob", 5))["ring"] == 5
            await client.close()

        run(with_gateway(gateway_config(), body))

    def test_malformed_json_answers_bad_request(self):
        async def body(gateway):
            client = await Client(gateway.port).connect()
            await client.send_raw(b"this is not json\n")
            response = await client.read()
            assert not response["ok"]
            assert response["error"] == ErrorCode.BAD_REQUEST
            # the connection survives a bad line
            assert (await client.hello())["ok"]
            await client.close()
            assert gateway.counters.protocol_errors == 1

        run(with_gateway(gateway_config(), body))

    def test_unknown_verb_and_bye(self):
        async def body(gateway):
            client = await Client(gateway.port).connect()
            response = await client.request(verb="frobnicate")
            assert response["error"] == ErrorCode.BAD_REQUEST
            assert (await client.request(verb="bye"))["ok"]
            await client.close()

        run(with_gateway(gateway_config(), body))


class TestCalls:
    def test_echo_roundtrip(self):
        async def body(gateway):
            client = await Client(gateway.port).connect()
            await client.hello("alice", 4)
            response = await client.request(
                verb="call", id=9, program="echo", args={"value": 1234}
            )
            assert response["ok"], response
            assert response["id"] == 9
            assert response["result"]["halted"]
            assert response["result"]["a"] == 1234
            assert response["result"]["ring"] == 4
            assert response["metrics"]["instructions"] == 2
            assert response["latency_ms"] >= 0
            await client.close()

        run(with_gateway(gateway_config(), body))

    def test_call_loop_crosses_rings(self):
        async def body(gateway):
            client = await Client(gateway.port).connect()
            await client.hello("alice", 4)
            response = await client.request(
                verb="call",
                id=1,
                program="call_loop",
                args={"count": 3, "target_ring": 0},
            )
            assert response["ok"], response
            assert response["result"]["ring_crossings"] == 6
            assert response["metrics"]["calls"] == 3
            assert response["metrics"]["returns"] == 3
            await client.close()

        run(with_gateway(gateway_config(), body))

    def test_unknown_program_and_bad_args(self):
        async def body(gateway):
            client = await Client(gateway.port).connect()
            await client.hello()
            response = await client.request(
                verb="call", id=1, program="mystery", args={}
            )
            assert response["error"] == ErrorCode.UNKNOWN_PROGRAM
            response = await client.request(
                verb="call", id=2, program="echo", args={"value": -5}
            )
            assert response["error"] == ErrorCode.BAD_REQUEST
            # neither touched a worker or took a slot
            assert gateway.counters.accepted == 0
            assert gateway.admission.total_pending == 0
            await client.close()

        run(with_gateway(gateway_config(), body))

    def test_per_user_isolation_on_one_worker(self):
        """Two users share a worker machine but get their own process."""

        async def body(gateway):
            alice = await Client(gateway.port).connect()
            bob = await Client(gateway.port).connect()
            await alice.hello("alice", 4)
            await bob.hello("bob", 5)
            a = await alice.request(
                verb="call", id=1, program="echo", args={"value": 1}
            )
            b = await bob.request(
                verb="call", id=1, program="echo", args={"value": 2}
            )
            assert a["result"]["a"] == 1 and a["result"]["ring"] == 4
            assert b["result"]["a"] == 2 and b["result"]["ring"] == 5
            await alice.close()
            await bob.close()

        run(with_gateway(gateway_config(), body))


class TestAdmission:
    def test_rate_limit_rejection_carries_retry_after(self):
        config = gateway_config(
            default_policy=RingPolicy(rate=0.5, burst=1, max_pending=8)
        )

        async def body(gateway):
            client = await Client(gateway.port).connect()
            await client.hello()
            first = await client.request(
                verb="call", id=1, program="echo", args={}
            )
            assert first["ok"]
            second = await client.request(
                verb="call", id=2, program="echo", args={}
            )
            assert not second["ok"]
            assert second["error"] == ErrorCode.RATE_LIMITED
            assert second["retry_after"] > 0
            assert second["ring"] == 4
            assert gateway.counters.rejected_rate_limited == 1
            await client.close()

        run(with_gateway(config, body))

    def test_ring_quota_exhausted_rejects_queue_full(self):
        """The satellite case end to end: one slow call holds ring 4's
        only slot; the next caller is told queue_full + retry_after,
        while ring 5 is unaffected."""
        config = gateway_config(
            default_policy=RingPolicy(
                rate=None, max_pending=1, queue_retry_after=0.125
            )
        )

        async def body(gateway):
            slow = await Client(gateway.port).connect()
            await slow.hello("slow", 4)
            fast = await Client(gateway.port).connect()
            await fast.hello("fast", 4)
            other = await Client(gateway.port).connect()
            await other.hello("other", 5)

            slow_task = asyncio.ensure_future(
                slow.request(
                    verb="call", id=1, program="compute", args=SLOW_ARGS
                )
            )
            # wait until the slow call holds the ring-4 slot
            for _ in range(2000):
                if gateway.admission.pending(4):
                    break
                await asyncio.sleep(0.001)
            assert gateway.admission.pending(4) == 1

            rejected = await fast.request(
                verb="call", id=2, program="echo", args={}
            )
            assert not rejected["ok"]
            assert rejected["error"] == ErrorCode.QUEUE_FULL
            assert rejected["retry_after"] == 0.125
            ok_other = await other.request(
                verb="call", id=3, program="echo", args={}
            )
            assert ok_other["ok"]  # ring 5 has its own quota

            slow_response = await slow_task
            assert slow_response["ok"]
            # slot released after completion; ring 4 admits again
            retried = await fast.request(
                verb="call", id=4, program="echo", args={}
            )
            assert retried["ok"]
            assert gateway.counters.rejected_queue_full == 1
            for client in (slow, fast, other):
                await client.close()

        run(with_gateway(config, body))

    def test_timeout_answers_client_and_keeps_accounting_exact(self):
        # The timeout must undercut the call's worker-side execution
        # even with the trace-compile tier collapsing the compute loop:
        # 200k simulated iterations still cost a few milliseconds, and
        # pool dispatch alone exceeds this deadline.
        config = gateway_config(call_timeout=0.002)

        async def body(gateway):
            client = await Client(gateway.port).connect()
            await client.hello()
            response = await client.request(
                verb="call", id=1, program="compute", args=SLOW_ARGS
            )
            assert not response["ok"]
            assert response["error"] == ErrorCode.TIMEOUT
            assert gateway.counters.timed_out == 1
            # the worker-side call still finishes and is accounted
            for _ in range(2000):
                if not gateway._inflight:
                    break
                await asyncio.sleep(0.005)
            assert not gateway._inflight
            stats = await client.request(verb="stats")
            assert stats["consistent"]
            assert stats["gateway"]["completed"] == 1
            assert stats["gateway"]["timed_out"] == 1
            assert stats["gateway"]["in_flight"] == 0
            assert gateway.admission.total_pending == 0
            await client.close()

        run(with_gateway(config, body))


class TestDrainAndStats:
    def test_queue_drains_on_shutdown(self):
        """The satellite case: stop() waits for the in-flight call,
        delivers its response, and leaves the accounting balanced."""

        async def body():
            gateway = RingGateway(gateway_config())
            await gateway.start()
            client = await Client(gateway.port).connect()
            await client.hello()
            call_task = asyncio.ensure_future(
                client.request(
                    verb="call", id=1, program="compute", args=SLOW_ARGS
                )
            )
            for _ in range(2000):
                if gateway._inflight:
                    break
                await asyncio.sleep(0.001)
            assert gateway._inflight
            await gateway.stop()
            response = await call_task
            assert response["ok"], response
            assert gateway.counters.completed == 1
            assert gateway.admission.total_pending == 0
            assert not gateway._inflight
            await client.close()

        run(body())

    def test_draining_gateway_rejects_new_calls(self):
        async def body():
            gateway = RingGateway(gateway_config())
            await gateway.start()
            client = await Client(gateway.port).connect()
            await client.hello()
            gateway._draining = True
            response = await client.request(
                verb="call", id=1, program="echo", args={}
            )
            assert response["error"] == ErrorCode.SHUTTING_DOWN
            assert response["retry_after"] > 0
            assert gateway.counters.rejected_shutting_down == 1
            await client.close()
            gateway._draining = False
            await gateway.stop()

        run(body())

    def test_stats_merge_equals_sum_of_workers(self):
        config = gateway_config(workers=2)

        async def body(gateway):
            report = await run_load(
                "127.0.0.1",
                gateway.port,
                sessions=4,
                calls=5,
                program="call_loop",
                args={"count": 2},
                rings=(4, 5),
            )
            assert report.ok == 20
            assert report.dropped == 0
            assert report.check() == []
            stats = report.stats
            assert stats["consistent"]
            # merged == integer sum of the per-worker snapshots
            per_worker = stats["workers"]["per_worker"].values()
            for counter, value in stats["architectural"].items():
                assert value == sum(
                    worker["architectural"][counter] for worker in per_worker
                )
            assert stats["gateway"]["completed"] == 20
            assert sum(w["calls"] for w in per_worker) == 20
            # 20 calls x 2 pairs x 2 crossings
            assert stats["architectural"]["ring_crossings"] == 80
            assert stats["rates"]["sdw_hit_rate"] is not None
            assert stats["gateway"]["latency"]["count"] == 20
            assert (
                stats["gateway"]["latency"]["p99_ms"]
                >= stats["gateway"]["latency"]["p50_ms"]
            )

        run(with_gateway(config, body))


class TestWorkerFunction:
    """execute_gate_call directly: the worker half without the network."""

    def test_persistent_machine_reuses_programs(self):
        job = {
            "user": "carol",
            "ring": 4,
            "program": "echo",
            "args": {"value": 42},
        }
        first = execute_gate_call(job)
        second = execute_gate_call(job)
        assert first["payload"]["a"] == 42
        assert second["worker_calls"] == first["worker_calls"] + 1
        # cumulative totals advance by exactly one call's metrics
        assert second["worker_total"]["instructions"] == (
            first["worker_total"]["instructions"]
            + second["metrics"]["instructions"]
        )

    def test_unknown_program_reports_error(self):
        result = execute_gate_call(
            {"user": "carol", "ring": 4, "program": "nope", "args": {}}
        )
        assert result["error"] == ErrorCode.UNKNOWN_PROGRAM


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert _percentile(samples, 0.50) == 50.0
        assert _percentile(samples, 0.99) == 99.0
        assert _percentile([7.0], 0.99) == 7.0
        assert _percentile([], 0.5) == 0.0
