"""Processor multiplexing: the round-robin scheduler over many processes."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.errors import ConfigurationError
from repro.krnl.scheduler import RoundRobinScheduler

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

#: Increments the shared counter COUNT times, then halts with A = COUNT.
WORKER = """
        .seg    NAME
main::  lda     =COUNT
loop:   aos     l_shared,*
        sba     =1
        tnz     loop
        lda     =COUNT
        halt
l_shared: .its  shared
"""


def build_two_jobs(machine, count_a=20, count_b=30, quantum=7):
    alice = machine.add_user("alice")
    bob = machine.add_user("bob")
    machine.store_data(
        ">shared", [0], acl=[AclEntry("*", RingBracketSpec.data(4))]
    )
    machine.store_program(
        ">udd>alice>wa",
        WORKER.replace("NAME", "wa").replace("COUNT", str(count_a)),
        acl=USER_ACL,
    )
    machine.store_program(
        ">udd>bob>wb",
        WORKER.replace("NAME", "wb").replace("COUNT", str(count_b)),
        acl=USER_ACL,
    )
    pa = machine.login(alice)
    pb = machine.login(bob)
    machine.initiate(pa, ">udd>alice>wa")
    machine.initiate(pb, ">udd>bob>wb")
    scheduler = machine.make_scheduler(quantum=quantum)
    ja = scheduler.add(pa, "wa$main", ring=4)
    jb = scheduler.add(pb, "wb$main", ring=4)
    return scheduler, ja, jb


class TestRoundRobin:
    def test_both_jobs_complete(self, machine):
        scheduler, ja, jb = build_two_jobs(machine)
        scheduler.run()
        assert scheduler.all_halted
        assert ja.halted and jb.halted

    def test_shared_segment_sees_both_processes(self, machine):
        """One segment in two virtual memories (paper p. 7): both
        processes increment the same physical words."""
        scheduler, *_ = build_two_jobs(machine, count_a=20, count_b=30)
        scheduler.run()
        shared = machine.supervisor.activate(">shared")
        assert machine.memory.peek_block(shared.placed.addr, 1) == [50]

    def test_execution_interleaves(self, machine):
        """With a small quantum both jobs need several quanta, i.e. the
        processor really was multiplexed, not run job-after-job."""
        scheduler, ja, jb = build_two_jobs(machine, quantum=7)
        scheduler.run()
        assert ja.quanta > 1 and jb.quanta > 1
        assert scheduler.context_switches >= ja.quanta + jb.quanta

    def test_register_state_isolated_across_switches(self, machine):
        """Each job's A register survives preemption intact: both halt
        with their own COUNT."""
        scheduler, ja, jb = build_two_jobs(machine, count_a=20, count_b=30)
        scheduler.run()
        # the last job to halt leaves its A in the live registers;
        # saved snapshots prove the other's state was kept separately
        assert ja.instructions > 0 and jb.instructions > 0
        # A-at-halt is COUNT for each worker: re-run each solo to compare
        # (cheap cross-check that preemption didn't corrupt arithmetic)
        total = ja.instructions + jb.instructions
        assert total == scheduler.run() + total  # second run: nothing left

    def test_quantum_validation(self, machine):
        with pytest.raises(ConfigurationError):
            machine.make_scheduler(quantum=0)

    def test_runaway_detection(self, machine):
        user = machine.add_user("u")
        machine.store_program(
            ">udd>u>spin",
            """
        .seg    spin
main::  tra     main
""",
            acl=USER_ACL,
        )
        process = machine.login(user)
        machine.initiate(process, ">udd>u>spin")
        scheduler = machine.make_scheduler(quantum=10)
        scheduler.add(process, "spin$main", ring=4)
        with pytest.raises(ConfigurationError):
            scheduler.run(max_quanta=5)

    def test_dbr_switch_flushes_sdw_cache(self, machine):
        """Dispatching a different process must not reuse the previous
        process's cached SDWs (they describe another virtual memory)."""
        scheduler, ja, jb = build_two_jobs(machine, quantum=5)
        before = machine.processor.sdw_cache.invalidations
        with pytest.raises(ConfigurationError):
            scheduler.run(max_quanta=2)  # a few switches, then give up
        assert machine.processor.sdw_cache.invalidations > before

    def test_private_segments_stay_private(self, machine):
        """Processes share >shared but each worker's stack writes stay
        in its own process's stack segment."""
        scheduler, ja, jb = build_two_jobs(machine)
        scheduler.run()
        stack_a = ja.process.dseg.get(ja.process.stack_segno(4)).addr
        stack_b = jb.process.dseg.get(jb.process.stack_segno(4)).addr
        assert stack_a != stack_b
