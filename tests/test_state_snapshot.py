"""Machine snapshots: round trips, integrity, and the metrics inverse."""

import json

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.errors import SnapshotError
from repro.mem.physical import PhysicalMemory
from repro.sim.machine import Machine
from repro.sim.metrics import MetricsSnapshot
from repro.state.snapshot import (
    read_snapshot_file,
    restore_machine,
    snapshot_digest,
    snapshot_machine,
    write_snapshot_file,
)

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

GATE_PROGRAM = """
        .seg    sample
        .gates  1
main::  lda     =42
        eap4    back
        call    l_write,*
back:   halt
l_write: .its   svc$write
"""


def run_sample(machine):
    user = machine.add_user("sampler")
    machine.store_program(">t>sample", GATE_PROGRAM, acl=USER_ACL)
    process = machine.login(user)
    machine.initiate(process, ">t>sample")
    return machine.run(process, "sample$main", ring=4)


class TestMetricsFromDict:
    def test_round_trips_as_dict(self, machine):
        run_sample(machine)
        collected = MetricsSnapshot.collect(machine.processor)
        assert MetricsSnapshot.from_dict(collected.as_dict()) == collected

    def test_missing_host_counters_default_to_zero(self):
        partial = MetricsSnapshot.from_dict({"cycles": 7, "instructions": 3})
        assert partial.cycles == 7
        assert partial.instructions == 3
        assert partial.ptlb_hits == 0

    def test_unknown_counter_rejected(self):
        with pytest.raises(ValueError, match="unknown metric counter"):
            MetricsSnapshot.from_dict({"cycles": 1, "quantum_flux": 2})


class TestPeekBlock:
    def test_peek_block_is_uncounted(self):
        memory = PhysicalMemory(64)
        memory.write(3, 9)
        reads_before = memory.reads
        assert memory.peek_block(2, 3) == [0, 9, 0]
        assert memory.reads == reads_before

    def test_read_block_still_counts(self):
        memory = PhysicalMemory(64)
        reads_before = memory.reads
        memory.read_block(0, 4)
        assert memory.reads == reads_before + 4

    def test_snapshot_alias_is_deprecated(self):
        memory = PhysicalMemory(64)
        memory.write(1, 5)
        with pytest.deprecated_call():
            assert memory.snapshot(0, 2) == [0, 5]


class TestSnapshotRoundTrip:
    def test_restore_reproduces_registers_and_counters(self, machine):
        result = run_sample(machine)
        snap = snapshot_machine(machine)
        restored = restore_machine(snap)
        original = machine.processor
        twin = restored.processor
        assert twin.registers.snapshot() == original.registers.snapshot()
        assert twin.cycles == original.cycles
        assert twin.stats == original.stats
        assert restored.console == machine.console == result.console
        assert (
            MetricsSnapshot.collect(twin).architectural()
            == MetricsSnapshot.collect(original).architectural()
        )

    def test_snapshot_of_restore_is_bit_identical(self, machine):
        run_sample(machine)
        snap = snapshot_machine(machine)
        again = snapshot_machine(restore_machine(snap))
        assert snapshot_digest(again) == snapshot_digest(snap)

    def test_extra_payload_survives(self, machine):
        snap = snapshot_machine(machine, extra={"note": "hello"})
        assert snap["extra"] == {"note": "hello"}

    def test_memory_serialised_sparsely(self, machine):
        run_sample(machine)
        snap = snapshot_machine(machine)
        words = sum(
            len(chunk) for chunk in snap["memory"]["chunks"].values()
        )
        assert 0 < words < machine.memory.size


class TestSnapshotFiles:
    def test_write_then_read(self, tmp_path, machine):
        run_sample(machine)
        path = str(tmp_path / "m.snap")
        digest = write_snapshot_file(snapshot_machine(machine), path)
        snap = read_snapshot_file(path)
        assert snapshot_digest(snap) == digest

    def test_tampered_snapshot_rejected(self, tmp_path, machine):
        run_sample(machine)
        path = tmp_path / "m.snap"
        write_snapshot_file(snapshot_machine(machine), str(path))
        envelope = json.loads(path.read_text())
        envelope["snapshot"]["counters"]["cycles"] += 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(SnapshotError, match="integrity"):
            read_snapshot_file(str(path))

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "m.snap"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SnapshotError, match="not a machine snapshot"):
            read_snapshot_file(str(path))

    def test_wrong_version_rejected(self, tmp_path, machine):
        path = tmp_path / "m.snap"
        write_snapshot_file(snapshot_machine(machine), str(path))
        envelope = json.loads(path.read_text())
        envelope["version"] = 999
        path.write_text(json.dumps(envelope))
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot_file(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot_file(str(tmp_path / "absent.snap"))
