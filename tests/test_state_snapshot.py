"""Machine snapshots: round trips, integrity, and the metrics inverse."""

import json

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.errors import SnapshotError
from repro.mem.physical import PhysicalMemory
from repro.sim.machine import Machine
from repro.sim.metrics import MetricsSnapshot
from repro.state.snapshot import (
    read_snapshot_file,
    restore_machine,
    snapshot_digest,
    snapshot_machine,
    write_snapshot_file,
)

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

GATE_PROGRAM = """
        .seg    sample
        .gates  1
main::  lda     =42
        eap4    back
        call    l_write,*
back:   halt
l_write: .its   svc$write
"""


def run_sample(machine):
    user = machine.add_user("sampler")
    machine.store_program(">t>sample", GATE_PROGRAM, acl=USER_ACL)
    process = machine.login(user)
    machine.initiate(process, ">t>sample")
    return machine.run(process, "sample$main", ring=4)


class TestMetricsFromDict:
    def test_round_trips_as_dict(self, machine):
        run_sample(machine)
        collected = MetricsSnapshot.collect(machine.processor)
        assert MetricsSnapshot.from_dict(collected.as_dict()) == collected

    def test_missing_host_counters_default_to_zero(self):
        partial = MetricsSnapshot.from_dict({"cycles": 7, "instructions": 3})
        assert partial.cycles == 7
        assert partial.instructions == 3
        assert partial.ptlb_hits == 0

    def test_unknown_counter_rejected(self):
        with pytest.raises(ValueError, match="unknown metric counter"):
            MetricsSnapshot.from_dict({"cycles": 1, "quantum_flux": 2})


class TestPeekBlock:
    def test_peek_block_is_uncounted(self):
        memory = PhysicalMemory(64)
        memory.write(3, 9)
        reads_before = memory.reads
        assert memory.peek_block(2, 3) == [0, 9, 0]
        assert memory.reads == reads_before

    def test_read_block_still_counts(self):
        memory = PhysicalMemory(64)
        reads_before = memory.reads
        memory.read_block(0, 4)
        assert memory.reads == reads_before + 4

    def test_snapshot_alias_is_deprecated(self):
        memory = PhysicalMemory(64)
        memory.write(1, 5)
        with pytest.deprecated_call():
            assert memory.snapshot(0, 2) == [0, 5]


class TestSnapshotRoundTrip:
    def test_restore_reproduces_registers_and_counters(self, machine):
        result = run_sample(machine)
        snap = snapshot_machine(machine)
        restored = restore_machine(snap)
        original = machine.processor
        twin = restored.processor
        assert twin.registers.snapshot() == original.registers.snapshot()
        assert twin.cycles == original.cycles
        assert twin.stats == original.stats
        assert restored.console == machine.console == result.console
        assert (
            MetricsSnapshot.collect(twin).architectural()
            == MetricsSnapshot.collect(original).architectural()
        )

    def test_snapshot_of_restore_is_bit_identical(self, machine):
        run_sample(machine)
        snap = snapshot_machine(machine)
        again = snapshot_machine(restore_machine(snap))
        assert snapshot_digest(again) == snapshot_digest(snap)

    def test_extra_payload_survives(self, machine):
        snap = snapshot_machine(machine, extra={"note": "hello"})
        assert snap["extra"] == {"note": "hello"}

    def test_memory_serialised_sparsely(self, machine):
        run_sample(machine)
        snap = snapshot_machine(machine)
        words = sum(
            len(chunk) for chunk in snap["memory"]["chunks"].values()
        )
        assert 0 < words < machine.memory.size


class TestSnapshotFiles:
    def test_write_then_read(self, tmp_path, machine):
        run_sample(machine)
        path = str(tmp_path / "m.snap")
        digest = write_snapshot_file(snapshot_machine(machine), path)
        snap = read_snapshot_file(path)
        assert snapshot_digest(snap) == digest

    def test_tampered_snapshot_rejected(self, tmp_path, machine):
        run_sample(machine)
        path = tmp_path / "m.snap"
        write_snapshot_file(snapshot_machine(machine), str(path))
        envelope = json.loads(path.read_text())
        envelope["snapshot"]["counters"]["cycles"] += 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(SnapshotError, match="integrity"):
            read_snapshot_file(str(path))

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "m.snap"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SnapshotError, match="not a machine snapshot"):
            read_snapshot_file(str(path))

    def test_wrong_version_rejected(self, tmp_path, machine):
        path = tmp_path / "m.snap"
        write_snapshot_file(snapshot_machine(machine), str(path))
        envelope = json.loads(path.read_text())
        envelope["version"] = 999
        path.write_text(json.dumps(envelope))
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot_file(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot_file(str(tmp_path / "absent.snap"))


class TestCompressedSnapshotFiles:
    def test_compressed_round_trip_same_digest(self, tmp_path, machine):
        run_sample(machine)
        snap = snapshot_machine(machine)
        plain = str(tmp_path / "plain.snap")
        packed = str(tmp_path / "packed.snap")
        assert write_snapshot_file(snap, plain) == write_snapshot_file(
            snap, packed, compress=True
        )
        assert read_snapshot_file(packed) == read_snapshot_file(plain)

    def test_compressed_file_is_smaller(self, tmp_path, machine):
        import os

        run_sample(machine)
        snap = snapshot_machine(machine)
        plain = tmp_path / "plain.snap"
        packed = tmp_path / "packed.snap"
        write_snapshot_file(snap, str(plain))
        write_snapshot_file(snap, str(packed), compress=True)
        assert os.path.getsize(packed) < os.path.getsize(plain)

    def test_explicit_level_accepted(self, tmp_path, machine):
        run_sample(machine)
        snap = snapshot_machine(machine)
        path = str(tmp_path / "packed.snap")
        write_snapshot_file(snap, path, compress=9)
        assert read_snapshot_file(path) == snap

    def test_corrupt_compressed_body_rejected(self, tmp_path, machine):
        """The checksum covers the uncompressed bytes: flipping state
        inside the compressed body is still caught after inflation."""
        import base64
        import zlib

        run_sample(machine)
        path = tmp_path / "m.snap"
        write_snapshot_file(snapshot_machine(machine), str(path), compress=True)
        envelope = json.loads(path.read_text())
        body = json.loads(
            zlib.decompress(base64.b64decode(envelope["snapshot_zlib"]))
        )
        body["counters"]["cycles"] += 1
        envelope["snapshot_zlib"] = base64.b64encode(
            zlib.compress(json.dumps(body).encode())
        ).decode("ascii")
        path.write_text(json.dumps(envelope))
        with pytest.raises(SnapshotError, match="integrity"):
            read_snapshot_file(str(path))

    def test_undecodable_compressed_body_rejected(self, tmp_path, machine):
        import base64

        run_sample(machine)
        path = tmp_path / "m.snap"
        write_snapshot_file(snapshot_machine(machine), str(path), compress=True)
        envelope = json.loads(path.read_text())
        envelope["snapshot_zlib"] = base64.b64encode(b"not zlib").decode()
        path.write_text(json.dumps(envelope))
        with pytest.raises(SnapshotError):
            read_snapshot_file(str(path))


class TestDeltaSnapshots:
    def _snap_pair(self, machine):
        from repro.sim.machine import Machine

        run_sample(machine)
        other = Machine()
        run_sample(other)
        other.processor.registers.a = 7
        return snapshot_machine(machine), snapshot_machine(other)

    def test_delta_reconstructs_bit_identically(self, machine):
        from repro.state.snapshot import apply_delta, delta_snapshot

        base, snap = self._snap_pair(machine)
        delta = delta_snapshot(snap, base)
        assert snapshot_digest(apply_delta(base, delta)) == snapshot_digest(
            snap
        )

    def test_delta_is_much_smaller_than_full(self, machine):
        from repro.state.snapshot import canonical_bytes, delta_snapshot

        base, snap = self._snap_pair(machine)
        delta = delta_snapshot(snap, base)
        assert len(canonical_bytes(delta)) < len(canonical_bytes(snap)) // 2

    def test_encode_decode_round_trip_compressed(self, machine):
        from repro.state.snapshot import (
            decode_delta,
            delta_snapshot,
            encode_delta,
        )

        base, snap = self._snap_pair(machine)
        delta = delta_snapshot(snap, base)
        assert decode_delta(encode_delta(delta)) == delta
        assert decode_delta(encode_delta(delta, compress=True)) == delta

    def test_wrong_base_rejected(self, machine):
        from repro.sim.machine import Machine
        from repro.state.snapshot import apply_delta, delta_snapshot

        base, snap = self._snap_pair(machine)
        delta = delta_snapshot(snap, base)
        stranger = Machine()
        run_sample(stranger)
        stranger.processor.registers.q = 99
        wrong = snapshot_machine(stranger)
        wrong["counters"]["cycles"] += 123
        with pytest.raises(SnapshotError, match="base"):
            apply_delta(wrong, delta)

    def test_list_edits_encode_as_prefix_diffs(self):
        from repro.state.snapshot import _apply_node, _diff_node

        base = {"xs": [1, 2, 3, 4], "ys": [5, 6]}
        # one element changed, one list grew, dict keys untouched
        new = {"xs": [1, 9, 3, 4], "ys": [5, 6, 7, 8]}
        node = _diff_node(base, new)
        assert _apply_node(base, node) == new
        # the unchanged elements are not re-encoded wholesale
        xs_node = node["k"]["xs"]
        assert set(xs_node["l"]) == {"1"}
        ys_node = node["k"]["ys"]
        assert ys_node["t"] == [7, 8]

    def test_list_shrink_round_trips(self):
        from repro.state.snapshot import _apply_node, _diff_node

        base = {"xs": [1, 2, 3, 4]}
        new = {"xs": [1, 2]}
        node = _diff_node(base, new)
        assert _apply_node(base, node) == new
