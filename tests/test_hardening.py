"""The hardening-extensions subsystem: three ablatable machine flags.

Each extension closes a gap the 1971 ring hardware leaves open, and
each is off by default — the plain machine reproduces the paper
unchanged.  The layers pinned here:

* the **primitives** (the MAC-chained return stack, the domain map, the
  config object) behave correctly in isolation;
* each extension **defeats its attack** and faults with its own code,
  on the ringed and the software (GE 645) profile alike;
* legal workloads — cross-ring call loops, the layered-supervisor
  story — run to completion with every flag on: hardening rejects
  forgeries, not customers;
* verdicts and architectural figures are **bit-identical across host
  tiers** with a flag on, and the flags are architecturally visible
  (the MAC cycle charge) but host-tier invisible, like everything else
  in the machine.
"""

import pytest

from repro.adversary.corpus import build_attack
from repro.adversary.harness import install_attack
from repro.cpu.faults import Fault, FaultCode
from repro.errors import ConfigurationError
from repro.hardening import (
    DEFAULT_AUTH_KEY_SEED,
    GENESIS_MAC,
    HARDENING_FLAGS,
    AuthReturnStack,
    DomainMap,
    HardeningConfig,
)
from repro.serve.catalog import build_program, install_image
from repro.sim.machine import Machine
from repro.sim.metrics import MetricsSnapshot


class TestAuthReturnStack:
    def test_push_verify_pop_roundtrip(self):
        stack = AuthReturnStack(DEFAULT_AUTH_KEY_SEED)
        stack.push(4, 12, 7)
        stack.push(3, 14, 2)
        assert len(stack) == 2
        assert stack.verify(3, 14, 2)
        stack.pop()
        assert stack.verify(4, 12, 7)
        stack.pop()
        assert len(stack) == 0

    def test_verify_fails_on_empty_chain(self):
        stack = AuthReturnStack(1)
        assert not stack.verify(4, 12, 7)

    @pytest.mark.parametrize("forged", [(5, 12, 7), (4, 13, 7), (4, 12, 8)])
    def test_verify_rejects_any_field_forgery(self, forged):
        stack = AuthReturnStack(1)
        stack.push(4, 12, 7)
        assert not stack.verify(*forged)
        assert stack.verify(4, 12, 7)  # verify does not consume

    def test_chain_tamper_detected(self):
        stack = AuthReturnStack(1)
        stack.push(4, 12, 7)
        stack.push(3, 14, 2)
        chain = stack.snapshot()
        chain[-1] ^= 1  # flip one MAC bit
        tampered = AuthReturnStack(1)
        tampered.restore(chain)
        assert not tampered.verify(3, 14, 2)

    def test_macs_are_chained(self):
        """The same frame yields a different MAC at a different depth."""
        stack = AuthReturnStack(1)
        stack.push(4, 12, 7)
        first = stack.peek()[-1]
        stack.push(4, 12, 7)
        assert stack.peek()[-1] != first

    def test_key_seed_changes_macs(self):
        a, b = AuthReturnStack(1), AuthReturnStack(2)
        a.push(4, 12, 7)
        b.push(4, 12, 7)
        assert a.peek()[-1] != b.peek()[-1]

    def test_snapshot_restore_roundtrip(self):
        stack = AuthReturnStack(9)
        stack.push(4, 12, 7)
        stack.push(2, 3, 1)
        copy = AuthReturnStack(9)
        copy.restore(stack.snapshot())
        assert copy.verify(2, 3, 1)
        copy.pop()
        assert copy.verify(4, 12, 7)

    def test_clear(self):
        stack = AuthReturnStack(1)
        stack.push(4, 12, 7)
        stack.clear()
        assert len(stack) == 0
        assert stack.peek() == ()


class TestDomainMap:
    def test_assign_register_lookup(self):
        domains = DomainMap()
        domains.assign("vault_seg", "vault")
        domains.register(12, "vault_seg")
        assert domains.domain_of(12) == "vault"
        assert domains.domain_of(13) is None

    def test_register_of_unassigned_name_is_noop(self):
        domains = DomainMap()
        domains.register(12, "common_seg")
        assert domains.domain_of(12) is None

    def test_table_constructor(self):
        domains = DomainMap((("a", "d1"), ("b", "d2")))
        domains.register(1, "a")
        domains.register(2, "b")
        assert domains.domain_of(1) == "d1"
        assert domains.domain_of(2) == "d2"

    def test_snapshot_restore_roundtrip(self):
        domains = DomainMap((("a", "d1"),))
        domains.register(5, "a")
        copy = DomainMap()
        copy.restore(domains.snapshot())
        assert copy.domain_of(5) == "d1"
        assert copy.by_name == domains.by_name


class TestHardeningConfig:
    def test_default_is_plain_1971_machine(self):
        config = HardeningConfig()
        assert not config.enabled
        assert config.enabled_flags() == ()

    def test_from_flags(self):
        config = HardeningConfig.from_flags(["nx_brackets", "ring_domains"])
        assert config.enabled
        assert set(config.enabled_flags()) == {"nx_brackets", "ring_domains"}

    def test_unknown_flag_rejected(self):
        with pytest.raises(ConfigurationError):
            HardeningConfig.from_flags(["w_xor_x"])

    def test_domains_require_ring_domains(self):
        with pytest.raises(ConfigurationError):
            HardeningConfig(domains=(("seg", "vault"),))
        config = HardeningConfig(
            ring_domains=True, domains=(("seg", "vault"),)
        )
        assert config.domain_table() == {"seg": "vault"}

    def test_bad_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            HardeningConfig(auth_key_seed=-1)

    def test_dict_roundtrip(self):
        config = HardeningConfig(
            auth_return_stack=True,
            ring_domains=True,
            domains=(("a", "d"),),
            auth_key_seed=7,
        )
        assert HardeningConfig.from_dict(config.as_dict()) == config

    def test_flag_registry_matches_config_fields(self):
        config = HardeningConfig()
        for flag in HARDENING_FLAGS:
            assert hasattr(config, flag)


def _run_attack(family, hardening, hardware_rings=True, **machine_kw):
    program = build_attack(family, 1971, 4)
    machine = Machine(
        services=False,
        hardware_rings=hardware_rings,
        hardening=hardening,
        **machine_kw,
    )
    process = install_attack(machine, program)
    try:
        result = machine.run(process, program.entry, ring=program.ring)
    except Fault as fault:
        return program, fault
    return program, result


class TestExtensionsDefeatTheirAttacks:
    CASES = [
        ("auth_return_forge", "auth_return_stack", FaultCode.ACV_AUTH_RETURN),
        ("domain_breach", "ring_domains", FaultCode.ACV_DOMAIN),
        ("wx_execute", "nx_brackets", FaultCode.ACV_NX),
    ]

    @pytest.mark.parametrize("family,flag,code", CASES)
    @pytest.mark.parametrize("hardware_rings", [True, False])
    def test_flag_on_faults_flag_off_succeeds(
        self, family, flag, code, hardware_rings
    ):
        program = build_attack(family, 1971, 4)
        hardened = HardeningConfig.from_flags([flag], domains=program.domains)
        _, outcome = _run_attack(
            family, hardened, hardware_rings=hardware_rings
        )
        assert isinstance(outcome, Fault) and outcome.code is code
        _, outcome = _run_attack(
            family, HardeningConfig(), hardware_rings=hardware_rings
        )
        assert not isinstance(outcome, Fault) and outcome.halted

    @pytest.mark.parametrize("family,flag,code", CASES)
    def test_only_the_matching_flag_defeats_it(self, family, flag, code):
        """The other two extensions leave the attack winning."""
        program = build_attack(family, 1971, 4)
        others = [f for f in HARDENING_FLAGS if f != flag]
        mismatched = HardeningConfig.from_flags(others)
        _, outcome = _run_attack(family, mismatched)
        assert not isinstance(outcome, Fault) and outcome.halted

    def test_domain_wall_is_one_directional(self):
        """Domained code may read common segments; not vice versa."""
        machine = Machine(
            services=False,
            hardening=HardeningConfig.from_flags(["ring_domains"]),
        )
        user = machine.add_user("u")
        from repro.core.acl import AclEntry, RingBracketSpec

        source = """
        .seg    reader
main::  lda     l_c,*
        halt
l_c:    .its    commondata
"""
        machine.store_program(
            ">t>reader",
            source,
            acl=[AclEntry("*", RingBracketSpec.procedure(1, top=5))],
        )
        machine.store_data(
            ">t>commondata",
            [123],
            acl=[AclEntry("*", RingBracketSpec.data(5))],
        )
        machine.assign_domain("reader", "vault")
        process = machine.login(user)
        machine.initiate(process, ">t>reader")
        machine.initiate(process, ">t>commondata")
        result = machine.run(process, "reader$main", ring=4)
        assert result.a == 123  # vault -> common: allowed


class TestLegalWorkloadsUnderHardening:
    ALL_ON = HardeningConfig.from_flags(list(HARDENING_FLAGS))

    @pytest.mark.parametrize("hardware_rings", [True, False])
    def test_call_loop_runs_with_every_flag_on(self, hardware_rings):
        machine = Machine(
            services=False,
            hardware_rings=hardware_rings,
            hardening=self.ALL_ON,
        )
        process = machine.login(machine.add_user("u"))
        entry = install_image(
            machine, process, build_program("call_loop", {"count": 4})
        )
        result = machine.run(process, entry, ring=4)
        assert result.halted
        # the ringed profile counts hardware crossings; baseline645
        # completes each crossing in the software assist, as a fault
        crossings = result.ring_crossings if hardware_rings else result.faults
        assert crossings == 8

    def test_layered_story_nests_the_mac_chain(self):
        """Ring 4 -> 1 -> 0 and back: two chained frames, both verify."""
        machine = Machine(services=False, hardening=self.ALL_ON)
        process = machine.login(machine.add_user("u"))
        entry = install_image(
            machine, process, build_program("layered", {"n": 1})
        )
        result = machine.run(process, entry, ring=4)
        assert result.a == 1101 and result.ring_crossings == 4
        assert len(machine.processor.auth_stack) == 0  # fully unwound

    def test_mac_charge_is_architectural(self):
        """auth_return_stack costs auth_mac_cycles per crossing pair."""

        def cycles(hardening):
            machine = Machine(services=False, hardening=hardening)
            process = machine.login(machine.add_user("u"))
            entry = install_image(
                machine, process, build_program("call_loop", {"count": 8})
            )
            return machine.run(process, entry, ring=4).cycles

        plain = cycles(HardeningConfig())
        authed = cycles(HardeningConfig.from_flags(["auth_return_stack"]))
        charge = Machine(services=False).processor.cost.auth_mac_cycles
        # one charge per frame, at the downward-call push; verification
        # overlaps the return's crossing sequence
        assert authed - plain == 8 * charge

    def test_checks_are_host_tier_invisible(self):
        """Flag-on figures are bit-identical interp vs full tier stack."""

        def figure(**tier_kw):
            machine = Machine(
                services=False, hardening=self.ALL_ON, **tier_kw
            )
            process = machine.login(machine.add_user("u"))
            entry = install_image(
                machine, process, build_program("call_loop", {"count": 6})
            )
            machine.run(process, entry, ring=4)
            return MetricsSnapshot.collect(machine.processor).architectural()

        interp = figure(
            fast_path_enabled=False,
            block_tier_enabled=False,
            jit_tier_enabled=False,
        )
        jit = figure(jit_tier_enabled=True)
        assert interp == jit

    def test_fresh_start_clears_stale_mac_frames(self):
        """An aborted run's chain must not vouch for the next run."""
        machine = Machine(
            services=False,
            hardening=HardeningConfig.from_flags(["auth_return_stack"]),
        )
        process = machine.login(machine.add_user("u"))
        entry = install_image(
            machine, process, build_program("call_loop", {"count": 2})
        )
        machine.run(process, entry, ring=4)
        machine.processor.auth_stack.push(4, 1, 1)  # simulate leftover
        result = machine.run(process, entry, ring=4)
        assert result.halted
        assert len(machine.processor.auth_stack) == 0


class TestFaultCodes:
    def test_new_codes_are_distinct_access_violations(self):
        codes = {
            FaultCode.ACV_AUTH_RETURN,
            FaultCode.ACV_DOMAIN,
            FaultCode.ACV_NX,
        }
        assert len(codes) == 3
        for code in codes:
            assert code.fclass.name == "ACCESS_VIOLATION"
