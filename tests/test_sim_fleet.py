"""The sharded fleet driver: fan-out, merge exactness, and fallbacks.

The merge contract is the whole point: the fleet's merged
:class:`MetricsSnapshot` must equal the integer sum of the per-shard
snapshots, identically, on every backend — so sharded benchmark figures
are interchangeable with one long serial run over the same shards.
"""

import functools

import pytest

from repro.errors import ConfigurationError, FleetWorkerError
from repro.sim.fleet import (
    BACKENDS,
    FleetResult,
    ShardResult,
    call_loop_shard,
    run_fleet,
)
from repro.sim.metrics import MetricsSnapshot

SMALL = functools.partial(call_loop_shard, count=8)


class TestRunFleet:
    def test_serial_backend_merges_exactly(self):
        fleet = run_fleet(SMALL, shards=3, backend="serial")
        assert len(fleet.shards) == 3
        assert [s.shard for s in fleet.shards] == [0, 1, 2]
        assert fleet.verify_merge()
        assert fleet.merged == MetricsSnapshot.sum_of(
            s.metrics for s in fleet.shards
        )
        for shard in fleet.shards:
            assert shard.payload["halted"]

    def test_shards_are_independent_and_identical(self):
        """Identical workloads produce identical per-shard figures."""
        fleet = run_fleet(SMALL, shards=4, backend="serial")
        first = fleet.shards[0].metrics
        assert all(s.metrics == first for s in fleet.shards)
        assert fleet.merged.instructions == 4 * first.instructions
        assert fleet.merged.ring_crossings == 4 * first.ring_crossings

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree(self, backend):
        serial = run_fleet(SMALL, shards=2, backend="serial")
        other = run_fleet(SMALL, shards=2, workers=2, backend=backend)
        assert other.verify_merge()
        assert other.merged == serial.merged
        assert other.payloads == serial.payloads

    def test_single_worker_degrades_to_serial(self):
        fleet = run_fleet(SMALL, shards=2, workers=1, backend="process")
        assert fleet.backend == "serial"
        assert fleet.verify_merge()

    def test_workers_capped_at_shards(self):
        fleet = run_fleet(SMALL, shards=2, workers=16, backend="thread")
        assert fleet.workers == 2

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            run_fleet(SMALL, shards=0)
        with pytest.raises(ConfigurationError):
            run_fleet(SMALL, shards=2, workers=0)
        with pytest.raises(ConfigurationError):
            run_fleet(SMALL, shards=2, backend="gpu")

    def test_rejects_workload_without_metrics(self):
        with pytest.raises(ConfigurationError):
            run_fleet(_bad_workload, shards=1, backend="serial")


def _bad_workload(shard):
    return {"shard": shard}, {"not": "a snapshot"}


def _exploding_workload(shard):
    """Module-level (picklable) workload that dies in shard 1 only."""
    if shard == 1:
        raise RuntimeError(f"boom in shard {shard}")
    return call_loop_shard(shard, count=2)


class TestWorkerExceptionPropagation:
    """A raising workload must surface with its shard index attached —
    the process backend otherwise reports a bare pool error with no
    indication of which sweep point died."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exception_carries_shard_index(self, backend):
        with pytest.raises(FleetWorkerError) as info:
            run_fleet(
                _exploding_workload, shards=2, workers=2, backend=backend
            )
        assert info.value.shard == 1
        assert "RuntimeError" in str(info.value)
        assert "boom in shard 1" in str(info.value)

    def test_survives_the_pickle_boundary(self):
        import pickle

        error = FleetWorkerError(3, "RuntimeError: boom")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, FleetWorkerError)
        assert clone.shard == 3
        assert "boom" in str(clone)

    def test_serial_backend_chains_the_original(self):
        with pytest.raises(FleetWorkerError) as info:
            run_fleet(_exploding_workload, shards=2, backend="serial")
        assert isinstance(info.value.__cause__, RuntimeError)


class TestCallLoopShard:
    def test_reference_workload_figures(self):
        payload, metrics = call_loop_shard(0, count=8)
        assert payload["halted"]
        assert payload["instructions"] == metrics.instructions
        # 8 downward calls, 8 upward returns: 16 crossings.
        assert payload["ring_crossings"] == 16
        assert metrics.calls == 8 and metrics.returns == 8

    def test_block_tier_knob_is_neutral(self):
        _, on = call_loop_shard(0, count=8, block_tier=True)
        _, off = call_loop_shard(0, count=8, block_tier=False)
        assert on.architectural() == off.architectural()

    def test_matches_fleet_of_one(self):
        _, alone = call_loop_shard(0, count=8)
        fleet = run_fleet(SMALL, shards=1, backend="serial")
        assert fleet.merged == alone


class TestFleetResult:
    def snapshot(self, **kw):
        base = {name: 0 for name in MetricsSnapshot.__dataclass_fields__}
        base.update(kw)
        return MetricsSnapshot(**base)

    def test_verify_merge_catches_corruption(self):
        shard = ShardResult(
            shard=0,
            payload=None,
            metrics=self.snapshot(instructions=5),
            wall_seconds=0.0,
        )
        good = FleetResult(
            shards=[shard], merged=self.snapshot(instructions=5)
        )
        bad = FleetResult(
            shards=[shard], merged=self.snapshot(instructions=6)
        )
        assert good.verify_merge()
        assert not bad.verify_merge()

    def test_empty_result_is_the_zero_snapshot(self):
        empty = FleetResult()
        assert empty.merged == MetricsSnapshot.zero()
        assert empty.verify_merge()
        assert empty.payloads == []

    def test_verify_merge_multi_shard_single_counter_drift(self):
        """An off-by-one in any one counter across many shards fails."""
        shards = [
            ShardResult(
                shard=index,
                payload=None,
                metrics=self.snapshot(instructions=10, cycles=30),
                wall_seconds=0.0,
            )
            for index in range(3)
        ]
        exact = self.snapshot(instructions=30, cycles=90)
        assert FleetResult(shards=shards, merged=exact).verify_merge()
        drifted = self.snapshot(instructions=30, cycles=91)
        assert not FleetResult(shards=shards, merged=drifted).verify_merge()

    def test_verify_merge_detects_corrupted_shard(self):
        """Corruption on the shard side (not just merged) is caught."""
        good = ShardResult(
            shard=0,
            payload=None,
            metrics=self.snapshot(calls=4),
            wall_seconds=0.0,
        )
        bad = ShardResult(
            shard=1,
            payload=None,
            metrics=self.snapshot(calls=5),
            wall_seconds=0.0,
        )
        merged = self.snapshot(calls=8)  # what two good shards would sum to
        assert not FleetResult(
            shards=[good, bad], merged=merged
        ).verify_merge()
