"""Unit tests for per-reference validation (Figures 4, 6, 7)."""

import pytest

from repro.cpu.faults import FaultCode
from repro.cpu.validate import (
    brackets_of,
    check_bound,
    validate_fetch,
    validate_read,
    validate_transfer,
    validate_write,
)
from repro.formats.sdw import SDW


def sdw(r1=0, r2=7, r3=7, read=True, write=True, execute=True, bound=100, gate=0):
    return SDW(
        addr=0,
        bound=bound,
        r1=r1,
        r2=r2,
        r3=r3,
        read=read,
        write=write,
        execute=execute,
        gate=gate,
    )


class TestBound:
    def test_inside(self):
        assert check_bound(sdw(bound=10), 9) is None

    def test_at_bound(self):
        assert check_bound(sdw(bound=10), 10) is FaultCode.ACV_OUT_OF_BOUNDS

    def test_zero_bound_segment(self):
        assert check_bound(sdw(bound=0), 0) is FaultCode.ACV_OUT_OF_BOUNDS


class TestFetch:
    def test_allowed_in_bracket(self):
        assert validate_fetch(sdw(r1=2, r2=4), 3, 0) is None

    def test_flag_off(self):
        assert (
            validate_fetch(sdw(execute=False), 3, 0) is FaultCode.ACV_NO_EXECUTE
        )

    def test_below_bracket(self):
        assert (
            validate_fetch(sdw(r1=2, r2=4), 1, 0)
            is FaultCode.ACV_EXECUTE_BRACKET
        )

    def test_above_bracket(self):
        assert (
            validate_fetch(sdw(r1=2, r2=4), 5, 0)
            is FaultCode.ACV_EXECUTE_BRACKET
        )

    def test_flag_checked_before_bracket(self):
        assert (
            validate_fetch(sdw(r1=2, r2=4, execute=False), 7, 0)
            is FaultCode.ACV_NO_EXECUTE
        )

    def test_bracket_checked_before_bound(self):
        assert (
            validate_fetch(sdw(r1=2, r2=4, bound=1), 7, 5)
            is FaultCode.ACV_EXECUTE_BRACKET
        )

    def test_bound_checked_last(self):
        assert (
            validate_fetch(sdw(r1=2, r2=4, bound=1), 3, 5)
            is FaultCode.ACV_OUT_OF_BOUNDS
        )


class TestRead:
    def test_allowed(self):
        assert validate_read(sdw(r2=4), 4, 0) is None

    def test_flag_off(self):
        assert validate_read(sdw(read=False), 0, 0) is FaultCode.ACV_NO_READ

    def test_above_bracket(self):
        assert validate_read(sdw(r2=4), 5, 0) is FaultCode.ACV_READ_BRACKET

    def test_read_has_no_lower_limit(self):
        """Reads are monotone: ring 0 can read anything readable."""
        assert validate_read(sdw(r1=4, r2=4), 0, 0) is None


class TestWrite:
    def test_allowed(self):
        assert validate_write(sdw(r1=4), 4, 0) is None

    def test_flag_off(self):
        assert validate_write(sdw(write=False), 0, 0) is FaultCode.ACV_NO_WRITE

    def test_above_bracket(self):
        assert validate_write(sdw(r1=4), 5, 0) is FaultCode.ACV_WRITE_BRACKET

    def test_write_bracket_tighter_than_read(self):
        """With R1 < R2, rings in (R1, R2] may read but not write."""
        descriptor = sdw(r1=2, r2=5)
        assert validate_read(descriptor, 4, 0) is None
        assert validate_write(descriptor, 4, 0) is FaultCode.ACV_WRITE_BRACKET


class TestTransfer:
    def test_allowed_same_ring(self):
        assert validate_transfer(sdw(r1=3, r2=5), 4, 4, 0) is None

    def test_ring_change_refused(self):
        """Figure 7: plain transfers may not change the ring."""
        assert (
            validate_transfer(sdw(r1=0, r2=7), 5, 4, 0)
            is FaultCode.ACV_TRANSFER_RING
        )

    def test_ring_check_precedes_execute_check(self):
        assert (
            validate_transfer(sdw(execute=False), 5, 4, 0)
            is FaultCode.ACV_TRANSFER_RING
        )

    def test_advance_check_execute_flag(self):
        assert (
            validate_transfer(sdw(execute=False), 4, 4, 0)
            is FaultCode.ACV_NO_EXECUTE
        )

    def test_advance_check_bracket(self):
        assert (
            validate_transfer(sdw(r1=0, r2=2), 4, 4, 0)
            is FaultCode.ACV_EXECUTE_BRACKET
        )

    def test_advance_check_bound(self):
        assert (
            validate_transfer(sdw(bound=5), 4, 4, 9)
            is FaultCode.ACV_OUT_OF_BOUNDS
        )


class TestBracketsOf:
    def test_extracts_triple(self):
        assert brackets_of(sdw(r1=1, r2=2, r3=3)).execute_bracket == (1, 2)
