"""Dynamic linking: linkage faults and link snapping."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.krnl.linkage import LINKAGE_FAULT_SEGNO
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

PROGRAM = """
        .seg    prog
main::  lda     =42
        eap4    back
        call    l_write,*
back:   eap4    back2
        call    l_write,*      ; second call: link already snapped
back2:  halt
l_write: .its   svc$write
"""


def build(lazy=True, source=PROGRAM, extra=()):
    machine = Machine(lazy_linking=lazy)
    user = machine.add_user("u")
    machine.store_program(">t>prog", source, acl=USER_ACL)
    for path, src, acl in extra:
        machine.store_program(path, src, acl=acl)
    process = machine.login(user)
    machine.initiate(process, ">t>prog")
    return machine, process


class TestLinkageFaults:
    def test_program_runs_identically_lazy_and_eager(self):
        results = {}
        for lazy in (False, True):
            machine, process = build(lazy=lazy)
            results[lazy] = machine.run(process, "prog$main", ring=4)
        assert results[False].console == results[True].console == [42, 42]
        assert results[False].a == results[True].a
        assert results[False].ring == results[True].ring == 4

    def test_link_starts_unresolved(self):
        machine, process = build(lazy=True)
        active = machine.supervisor.activate(">t>prog")
        from repro.formats.indirect import IndirectWord

        link_word = machine.memory.peek_block(
            machine.supervisor.loader.word_addr(active.placed, 6), 1
        )[0]
        assert IndirectWord.unpack(link_word).segno == LINKAGE_FAULT_SEGNO
        assert machine.supervisor.linkage.pending_count == 1

    def test_first_reference_snaps_exactly_once(self):
        machine, process = build(lazy=True)
        machine.run(process, "prog$main", ring=4)
        assert machine.supervisor.linkage.snaps == 1
        # the one remaining pending link is svc's own (unused) counter
        # link — lazily activated segments defer theirs too
        assert machine.supervisor.linkage.pending_count == 1

    def test_second_reference_is_free(self):
        """After snapping, the link behaves exactly like an eager one:
        re-running the program takes zero further linkage faults."""
        machine, process = build(lazy=True)
        machine.run(process, "prog$main", ring=4)
        first_snaps = machine.supervisor.linkage.snaps
        machine.run(process, "prog$main", ring=4)
        assert machine.supervisor.linkage.snaps == first_snaps

    def test_lazy_first_run_costs_more(self):
        """The linkage fault is paid once, up front."""
        eager_machine, eager_process = build(lazy=False)
        lazy_machine, lazy_process = build(lazy=True)
        eager = eager_machine.run(eager_process, "prog$main", ring=4)
        lazy = lazy_machine.run(lazy_process, "prog$main", ring=4)
        assert lazy.cycles > eager.cycles

    def test_snapped_link_preserves_ring_field(self):
        """A link assembled with an explicit validation ring keeps it
        across snapping (a *data* link: the raised ring then governs the
        read validation, not a CALL)."""
        source = """
        .seg    prog
main::  lda     l_data,*
        halt
l_data: .its    table, 5
"""
        machine, process = build(
            lazy=True,
            source=source,
            extra=[],
        )
        machine.store_data(
            ">t>table",
            [77],
            acl=[AclEntry("*", RingBracketSpec.data(4, read_to=5))],
        )
        result = machine.run(process, "prog$main", ring=4)
        assert result.a == 77
        active = machine.supervisor.activate(">t>prog")
        from repro.formats.indirect import IndirectWord

        word = machine.memory.peek_block(
            machine.supervisor.loader.word_addr(active.placed, 2), 1
        )[0]
        assert IndirectWord.unpack(word).ring == 5

    def test_unresolvable_link_aborts_at_first_use(self):
        source = PROGRAM.replace("svc$write", "ghost$entry")
        machine, process = build(lazy=True, source=source)
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "prog$main", ring=4)
        # the linkage fault surfaces after the snap attempt fails
        assert excinfo.value.code is FaultCode.ACV_SEGNO_BOUND

    def test_lazy_call_chain_snaps_on_demand(self):
        """A chain of lazily linked segments snaps one link per first
        crossing, activating targets transitively."""
        middle = """
        .seg    middle
        .gates  1
entry:: eap6    pr0|0
        spr4    pr6|1
        eap4    back
        call    l_w,*
back:   eap4    pr6|1,*
        return  pr4|0
l_w:    .its    svc$write
"""
        source = PROGRAM.replace("svc$write", "middle$entry").replace(
            "back2:  halt",
            "back2:  halt",
        )
        machine, process = build(
            lazy=True,
            source=source,
            extra=[
                (
                    ">t>middle",
                    middle,
                    [AclEntry("*", RingBracketSpec.procedure(2, callable_from=5))],
                )
            ],
        )
        result = machine.run(process, "prog$main", ring=4)
        assert result.halted
        assert result.console == [42, 42]
        # prog->middle and middle->svc both snapped, exactly once each
        assert machine.supervisor.linkage.snaps == 2
