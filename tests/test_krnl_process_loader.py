"""Unit tests for processes, their stacks, and the loader."""

import pytest

from repro.asm import assemble
from repro.core.acl import RingBracketSpec
from repro.errors import ConfigurationError, LinkError
from repro.formats.indirect import IndirectWord
from repro.krnl.loader import Loader
from repro.krnl.process import Process, STACK_SEGMENTS, STACK_SIZE
from repro.krnl.users import User
from repro.mem.segment import SegmentImage


@pytest.fixture
def alice():
    return User("alice")


@pytest.fixture
def process(memory, alice):
    return Process.create(memory, alice)


class TestProcessCreation:
    def test_eight_stack_segments(self, process):
        for ring in range(STACK_SEGMENTS):
            sdw = process.dseg.get(ring)
            assert sdw.present
            assert sdw.bound == STACK_SIZE

    def test_stack_brackets_end_at_ring(self, process):
        """Paper p. 17: the ring-n stack's read and write brackets end
        at ring n, hiding it from higher rings."""
        for ring in range(STACK_SEGMENTS):
            sdw = process.dseg.get(ring)
            assert (sdw.r1, sdw.r2, sdw.r3) == (ring, ring, ring)
            assert sdw.read and sdw.write and not sdw.execute

    def test_stack_word0_is_next_available(self, process, memory):
        """Paper p. 19: a fixed word of each stack segment points to the
        next available stack area."""
        for ring in range(STACK_SEGMENTS):
            sdw = process.dseg.get(ring)
            assert memory.peek_block(sdw.addr, 1) == [1]

    def test_dbr_stack_field(self, memory, alice):
        process = Process.create(memory, alice, stack_base_segno=0)
        assert process.stack_segno(3) == 3

    def test_relocated_stacks(self, memory, alice):
        process = Process.create(
            memory, alice, descriptor_bound=64, stack_base_segno=16
        )
        assert process.stack_segno(3) == 19
        assert process.dseg.get(19).present

    def test_descriptor_too_small_rejected(self, memory, alice):
        with pytest.raises(ConfigurationError):
            Process.create(memory, alice, descriptor_bound=4)

    def test_processes_have_separate_stacks(self, memory, alice):
        a = Process.create(memory, alice)
        b = Process.create(memory, User("bob"))
        assert a.dseg.get(4).addr != b.dseg.get(4).addr


class TestKnownSegments:
    def test_install_data_and_lookup(self, process):
        process.install_data("d", 20, RingBracketSpec.data(4), size=8, values=[1, 2])
        assert process.segno_of("d") == 20

    def test_unknown_name(self, process):
        with pytest.raises(ConfigurationError):
            process.segno_of("ghost")

    def test_duplicate_name_rejected(self, process):
        process.install_data("d", 20, RingBracketSpec.data(4), size=4)
        with pytest.raises(ConfigurationError):
            process.install_data("d", 21, RingBracketSpec.data(4), size=4)

    def test_entry_of(self, process, memory):
        from repro.formats.sdw import SDW

        block = memory.allocate(4)
        process.make_known(
            "p",
            30,
            SDW(addr=block.addr, bound=4, read=True, execute=True, r1=4, r2=4, r3=4),
            entries={"main": 2},
        )
        assert process.entry_of("p$main") == (30, 2)
        assert process.entry_of("p") == (30, 0)

    def test_entry_of_unknown_entry(self, process, memory):
        from repro.formats.sdw import SDW

        block = memory.allocate(4)
        process.make_known("p", 30, SDW(addr=block.addr, bound=4), entries={})
        with pytest.raises(ConfigurationError):
            process.entry_of("p$nope")


class TestLoader:
    def test_place_copies_words(self, memory):
        loader = Loader(memory)
        placed = loader.place(SegmentImage.from_values("d", [5, 6, 7]))
        assert memory.peek_block(placed.addr, 3) == [5, 6, 7]

    def test_place_paged(self, memory):
        loader = Loader(memory)
        placed = loader.place(
            SegmentImage.from_values("d", list(range(100))), paged=True
        )
        assert placed.paged
        assert placed.page_table is not None
        assert placed.page_table.read_word(99) == 99

    def test_resolve_pointer_link(self, memory):
        loader = Loader(memory)
        image = assemble("l:  .its  other$entry, 3\n", name="me")
        placed = loader.place(image)
        loader.resolve(placed, 9, lambda name: (12, {"entry": 5}))
        ind = IndirectWord.unpack(memory.peek_block(placed.addr, 1)[0])
        assert (ind.segno, ind.wordno, ind.ring) == (12, 5, 3)

    def test_resolve_preserves_ring_and_chain(self, memory):
        loader = Loader(memory)
        image = assemble("l:  .its  other$entry, 5, 1\n", name="me")
        placed = loader.place(image)
        loader.resolve(placed, 9, lambda name: (12, {"entry": 0}))
        ind = IndirectWord.unpack(memory.peek_block(placed.addr, 1)[0])
        assert ind.ring == 5 and ind.indirect

    def test_resolve_segno_link(self, memory):
        loader = Loader(memory)
        image = assemble("p:  .ptr  t\nt:  halt\n", name="me")
        placed = loader.place(image)
        loader.resolve(placed, 33, lambda name: (0, {}))
        ind = IndirectWord.unpack(memory.peek_block(placed.addr, 1)[0])
        assert (ind.segno, ind.wordno) == (33, 1)

    def test_resolve_missing_entry(self, memory):
        loader = Loader(memory)
        image = assemble("l:  .its  other$nope\n", name="me")
        placed = loader.place(image)
        with pytest.raises(LinkError):
            loader.resolve(placed, 9, lambda name: (12, {"entry": 0}))

    def test_resolve_bare_segment_name_points_at_word0(self, memory):
        loader = Loader(memory)
        image = assemble("l:  .its  other\n", name="me")
        placed = loader.place(image)
        loader.resolve(placed, 9, lambda name: (12, {}))
        ind = IndirectWord.unpack(memory.peek_block(placed.addr, 1)[0])
        assert (ind.segno, ind.wordno) == (12, 0)
