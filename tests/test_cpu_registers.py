"""Unit tests for the processor register file."""

import pytest

from repro.cpu.registers import (
    IPR,
    NUM_PR,
    PointerRegister,
    RegisterFile,
    TPR,
)
from repro.errors import ConfigurationError, FieldRangeError


class TestPointerRegister:
    def test_load(self):
        pr = PointerRegister()
        pr.load(5, 100, 3)
        assert (pr.segno, pr.wordno, pr.ring) == (5, 100, 3)

    def test_load_validates_widths(self):
        pr = PointerRegister()
        with pytest.raises(FieldRangeError):
            pr.load(1 << 14, 0, 0)

    def test_raise_ring_only_raises(self):
        pr = PointerRegister(ring=3)
        pr.raise_ring(5)
        assert pr.ring == 5
        pr.raise_ring(2)
        assert pr.ring == 5

    def test_packed_roundtrip(self):
        pr = PointerRegister(segno=7, wordno=42, ring=2)
        packed = pr.packed()
        assert (packed.segno, packed.wordno, packed.ring) == (7, 42, 2)

    def test_copy_is_independent(self):
        pr = PointerRegister(segno=1)
        other = pr.copy()
        other.segno = 2
        assert pr.segno == 1


class TestIPR:
    def test_set(self):
        ipr = IPR()
        ipr.set(3, 9, 100)
        assert (ipr.ring, ipr.segno, ipr.wordno) == (3, 9, 100)

    def test_advance_wraps_at_18_bits(self):
        ipr = IPR(wordno=(1 << 18) - 1)
        ipr.advance()
        assert ipr.wordno == 0


class TestTPR:
    def test_raise_ring(self):
        tpr = TPR(ring=2)
        tpr.raise_ring(5)
        assert tpr.ring == 5
        tpr.raise_ring(1)
        assert tpr.ring == 5

    def test_set_masks_fields(self):
        tpr = TPR()
        tpr.set(9, 1 << 14, 1 << 18)
        assert tpr.ring == 1  # 9 & 7
        assert tpr.segno == 0
        assert tpr.wordno == 0


class TestRegisterFile:
    def test_eight_pointer_registers(self):
        regs = RegisterFile()
        assert len(regs.prs) == NUM_PR == 8

    def test_pr_index_validated(self):
        regs = RegisterFile()
        with pytest.raises(ConfigurationError):
            regs.pr(8)

    def test_set_a_truncates(self):
        regs = RegisterFile()
        regs.set_a(1 << 40)
        assert regs.a == (1 << 40) & (2**36 - 1)

    def test_raise_pr_rings_sweeps_all(self):
        regs = RegisterFile()
        for i, pr in enumerate(regs.prs):
            pr.load(0, 0, i % 3)
        regs.raise_pr_rings(4)
        assert all(pr.ring >= 4 for pr in regs.prs)

    def test_ring_invariant_check(self):
        regs = RegisterFile()
        regs.ipr.set(4, 0, 0)
        for pr in regs.prs:
            pr.load(0, 0, 4)
        assert regs.check_ring_invariant()
        regs.prs[3].ring = 2
        assert not regs.check_ring_invariant()

    def test_snapshot_restore_roundtrip(self):
        regs = RegisterFile()
        regs.ipr.set(3, 5, 7)
        regs.prs[2].load(1, 2, 3)
        regs.set_a(111)
        regs.set_q(222)
        regs.crr = 5
        saved = regs.snapshot()
        regs.ipr.set(0, 0, 0)
        regs.prs[2].load(0, 0, 0)
        regs.set_a(0)
        regs.crr = 0
        regs.restore(saved)
        assert (regs.ipr.ring, regs.ipr.segno, regs.ipr.wordno) == (3, 5, 7)
        assert (regs.prs[2].segno, regs.prs[2].wordno, regs.prs[2].ring) == (1, 2, 3)
        assert regs.a == 111 and regs.q == 222 and regs.crr == 5

    def test_snapshot_is_deep(self):
        regs = RegisterFile()
        saved = regs.snapshot()
        regs.prs[0].load(1, 1, 1)
        assert saved.prs[0].segno == 0
