"""The session-routing tier: consistent-hash stability, multi-gateway
merged-stats cross-checks, and live migration on rebalance.

The routing contract has two halves.  The hash ring guarantees a
rebalance is *minimal*: adding a node moves only the keys the new node
now owns (about K/N of K keys over N nodes) and nothing else changes
owner.  The migration protocol guarantees a rebalance is *invisible*:
a moved session is parked on its old owner and hydrated on its new
one, so the merged architectural counters keep adding up exactly
across the move.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.serve.gateway import GatewayConfig
from repro.serve.loadgen import run_load
from repro.serve.router import RouterConfig, SessionRouter
from repro.sim.fleet import ConsistentHashRing


class TestConsistentHashStability:
    def test_join_moves_at_most_its_share(self):
        keys = [f"user{i}" for i in range(4000)]
        ring = ConsistentHashRing(["gw0", "gw1", "gw2"])
        before = {key: ring.owner(key) for key in keys}
        ring.add("gw3")
        after = {key: ring.owner(key) for key in keys}

        moved = [key for key in keys if before[key] != after[key]]
        # every moved key is now owned by the joining node — nothing
        # shuffled between the incumbents
        assert all(after[key] == "gw3" for key in moved)
        # and the new node took about K/N; allow 2x slack for vnode
        # placement variance, which still pins "not a full reshuffle"
        assert len(moved) <= 2 * len(keys) // len(ring.nodes)
        assert len(moved) > 0

    def test_leave_moves_only_the_departed_nodes_keys(self):
        keys = [f"user{i}" for i in range(4000)]
        ring = ConsistentHashRing(["gw0", "gw1", "gw2", "gw3"])
        before = {key: ring.owner(key) for key in keys}
        ring.remove("gw3")
        after = {key: ring.owner(key) for key in keys}
        for key in keys:
            if before[key] != "gw3":
                assert after[key] == before[key]
            else:
                assert after[key] != "gw3"

    def test_join_then_leave_restores_every_owner(self):
        keys = [f"user{i}" for i in range(1000)]
        ring = ConsistentHashRing(["gw0", "gw1"])
        before = {key: ring.owner(key) for key in keys}
        ring.add("gw2")
        ring.remove("gw2")
        assert {key: ring.owner(key) for key in keys} == before

    def test_empty_ring_refuses_lookup(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing().owner("anyone")


def _gateway_config(store, workers=2, slots=4):
    return GatewayConfig(
        workers=workers,
        backend="thread",
        max_sessions=slots,
        session_store_dir=store,
        prefetch_interval=0,
    )


class TestRoutedServing:
    def test_merged_stats_cross_check_across_gateways(self, tmp_path):
        async def main():
            store = str(tmp_path / "store")
            router = SessionRouter(RouterConfig())
            await router.start()
            try:
                for i in range(2):
                    await router.spawn(f"gw{i}", _gateway_config(store))
                report = await run_load(
                    "127.0.0.1",
                    router.port,
                    sessions=16,
                    calls=2,
                    args={"count": 3},
                    concurrency=8,
                )
            finally:
                await router.stop()
            return report

        report = asyncio.run(main())
        assert report.dropped == 0
        assert report.check() == []
        stats = report.stats
        assert stats["consistent"]
        assert stats["router_consistent"]
        per_gateway = stats["per_gateway"]
        assert len(per_gateway) == 2
        # both backends actually served traffic, and the router's own
        # per-gateway sums plus baselines equal each backend's counters
        for entry in per_gateway.values():
            assert entry["reachable"]
            assert entry["router_agrees"]
        assert (
            sum(e["router_calls"] for e in per_gateway.values())
            == report.ok
        )
        # merged == integer sum of the backends, counter by counter
        for counter, value in stats["architectural"].items():
            assert value == sum(
                e["architectural"][counter] for e in per_gateway.values()
            )

    def test_gateway_join_migrates_and_stays_exact(self, tmp_path):
        async def main():
            store = str(tmp_path / "store")
            router = SessionRouter(RouterConfig())
            await router.start()
            try:
                for i in range(2):
                    await router.spawn(f"gw{i}", _gateway_config(store))
                first = await run_load(
                    "127.0.0.1",
                    router.port,
                    sessions=24,
                    calls=1,
                    args={"count": 3},
                    concurrency=8,
                )
                await router.spawn("gw2", _gateway_config(store))
                migrations = router.counters.migrations
                second = await run_load(
                    "127.0.0.1",
                    router.port,
                    sessions=24,
                    calls=1,
                    args={"count": 3},
                    concurrency=8,
                )
            finally:
                await router.stop()
            return first, migrations, second

        first, migrations, second = asyncio.run(main())
        assert first.dropped == 0
        assert second.dropped == 0
        # the join actually moved sessions (parked on the old owner,
        # hydrated on the new one)...
        assert migrations > 0
        # ...and the cross-gateway ledger still closes afterwards
        stats = second.stats
        assert stats["consistent"]
        assert stats["router_consistent"]
        assert len(stats["per_gateway"]) == 3
        merged_calls = stats["architectural"]["calls"]
        assert merged_calls == (first.ok + second.ok) * 3

    def test_detach_hands_sessions_back(self, tmp_path):
        async def main():
            store = str(tmp_path / "store")
            router = SessionRouter(RouterConfig())
            await router.start()
            try:
                for i in range(3):
                    await router.spawn(f"gw{i}", _gateway_config(store))
                first = await run_load(
                    "127.0.0.1",
                    router.port,
                    sessions=18,
                    calls=1,
                    args={"count": 3},
                    concurrency=6,
                )
                await router.detach("gw2")
                second = await run_load(
                    "127.0.0.1",
                    router.port,
                    sessions=18,
                    calls=1,
                    args={"count": 3},
                    concurrency=6,
                )
            finally:
                await router.stop()
            return first, second

        first, second = asyncio.run(main())
        assert first.dropped == 0
        assert second.dropped == 0
        stats = second.stats
        assert stats["consistent"]
        assert stats["router_consistent"]
        assert len(stats["per_gateway"]) == 2
