"""Processor-level tests: fetch, traps, privilege, cost accounting."""

import pytest

from repro.cpu.faults import Fault, FaultCode
from repro.cpu.isa import Op
from repro.cpu.processor import CostModel, HANDLER_ABORT, HANDLER_RETRY, Processor
from repro.errors import ConfigurationError, MachineHalted
from repro.mem.descriptor import DBR

from tests.helpers import BareMachine, asm_inst, halt_word


class TestFetch:
    def test_fetch_outside_execute_bracket(self, bare):
        bare.add_code(8, [halt_word()], ring=4)
        bare.start(8, 0, ring=6)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.ACV_EXECUTE_BRACKET

    def test_fetch_from_data_segment(self, bare):
        bare.add_data(9, [halt_word()], ring=7)
        bare.start(9, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.ACV_NO_EXECUTE

    def test_fetch_beyond_bound(self, bare):
        bare.add_code(8, [halt_word()], ring=4)
        bare.start(8, 5, ring=4)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.ACV_OUT_OF_BOUNDS

    def test_fetch_missing_segment(self, bare):
        bare.start(20, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.MISSING_SEGMENT

    def test_fetch_above_descriptor_bound(self, bare):
        bare.start(63, 0, ring=4)  # bound is 64, segno 63 exists (missing)
        bare.regs.ipr.set(4, 100, 0)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.ACV_SEGNO_BOUND


class TestPrivilege:
    def test_privileged_instruction_outside_ring0(self, bare):
        bare.add_code(8, [asm_inst(Op.CIOC, offset=1, immediate=True)], ring=4)
        bare.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.ACV_PRIVILEGED

    def test_privileged_instruction_in_ring0(self, bare):
        bare.add_code(
            8, [asm_inst(Op.CIOC, offset=1, immediate=True), halt_word()], ring=0
        )
        seen = []
        bare.proc.io_handler = lambda proc, word: seen.append(word)
        bare.start(8, 0, ring=0)
        bare.run()
        assert seen == [1]

    def test_ldbr_is_privileged(self, bare):
        bare.add_code(8, [asm_inst(Op.LDBR, offset=0)], ring=4)
        bare.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.ACV_PRIVILEGED

    def test_rcu_is_privileged(self, bare):
        bare.add_code(8, [asm_inst(Op.RCU)], ring=4)
        bare.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.ACV_PRIVILEGED

    def test_ldbr_switches_descriptor_and_clears_cache(self, bare):
        """LDBR loads a new DBR from memory and flushes the SDW cache."""
        new_dbr = DBR(addr=0o3000, bound=10, stack=2)
        w0, w1 = new_dbr.pack()
        bare.add_code(
            8,
            [asm_inst(Op.LDBR, offset=2, pr=1), halt_word()],
            ring=0,
        )
        bare.add_data(9, [0, 0, w0, w1], ring=0)
        bare.start(8, 0, ring=0)
        bare.regs.pr(1).load(9, 0, 0)
        bare.proc.sdw_cache.fill(5, bare.dseg.get(8))
        bare.step()  # just the LDBR: the old VM is gone afterwards
        assert bare.proc.dbr == new_dbr
        assert bare.proc.sdw_cache.lookup(5) is None


class TestTrapDelivery:
    def test_no_handler_propagates(self, bare):
        bare.start(20, 0, ring=4)
        with pytest.raises(Fault):
            bare.step()

    def test_handler_abort_propagates(self, bare):
        bare.proc.fault_handler = lambda proc, fault: HANDLER_ABORT
        bare.start(20, 0, ring=4)
        with pytest.raises(Fault):
            bare.step()

    def test_handler_retry_reexecutes(self, bare):
        """The handler repairs the world and the instruction retries."""
        calls = []

        def handler(proc, fault):
            calls.append(fault.code)
            bare.add_code(20, [halt_word()], ring=4)
            proc.invalidate_sdw(20)
            return HANDLER_RETRY

        bare.proc.fault_handler = handler
        bare.start(20, 0, ring=4)
        bare.run()
        assert bare.proc.halted
        assert calls == [FaultCode.MISSING_SEGMENT]

    def test_handler_continue_resumes_where_handler_points(self, bare):
        """A fetch fault leaves the IPR at the faulting word; a handler
        continuing past it must advance the IPR itself."""
        bare.add_code(8, [0o777 << 27, halt_word()], ring=4)  # bad opcode

        def handler(proc, fault):
            proc.registers.ipr.set(4, fault.at_segno, fault.at_wordno + 1)
            return "continue"

        bare.proc.fault_handler = handler
        bare.start(8, 0, ring=4)
        bare.run()
        assert bare.proc.halted

    def test_trap_overhead_charged(self, bare):
        cost = bare.proc.cost
        bare.add_code(8, [0o777 << 27, halt_word()], ring=4)
        bare.proc.fault_handler = lambda proc, fault: "continue"
        bare.start(8, 0, ring=4)
        before = bare.proc.cycles
        bare.step()
        assert bare.proc.cycles - before >= cost.trap_overhead

    def test_fault_carries_instruction_location(self, bare):
        bare.add_code(8, [asm_inst(Op.LDA, offset=50, pr=1)], ring=4)
        bare.add_data(9, [0], ring=7)
        bare.start(8, 0, ring=4)
        bare.regs.pr(1).load(9, 50, 4)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.at_segno == 8
        assert excinfo.value.at_wordno == 0

    def test_stats_count_faults(self, bare):
        bare.start(20, 0, ring=4)
        with pytest.raises(Fault):
            bare.step()
        assert bare.proc.stats.faults == 1


class TestRun:
    def test_run_returns_instruction_count(self, bare):
        bare.add_code(8, [asm_inst(Op.NOP)] * 5 + [halt_word()], ring=4)
        bare.start(8, 0, ring=4)
        assert bare.run() == 6

    def test_runaway_detected(self, bare):
        bare.add_code(8, [asm_inst(Op.TRA, offset=0)], ring=4)
        bare.start(8, 0, ring=4)
        with pytest.raises(ConfigurationError):
            bare.proc.run(max_steps=100)

    def test_reset_counters(self, bare):
        bare.add_code(8, [halt_word()], ring=4)
        bare.start(8, 0, ring=4)
        bare.run()
        bare.proc.reset_counters()
        assert bare.proc.cycles == 0
        assert bare.proc.stats.instructions == 0


class TestCostModel:
    def test_cycles_scale_with_memory_traffic(self):
        slow = BareMachine(cost=CostModel(memory_reference=10))
        fast = BareMachine(cost=CostModel(memory_reference=1))
        for machine in (slow, fast):
            machine.add_code(8, [asm_inst(Op.NOP), halt_word()], ring=4)
            machine.start(8, 0, ring=4)
            machine.run()
        assert slow.proc.cycles > fast.proc.cycles

    def test_sdw_cache_saves_cycles(self):
        cached = BareMachine(sdw_cache=None)  # default enabled cache
        from repro.cpu.sdwcache import SDWCache

        uncached = BareMachine(sdw_cache=SDWCache(enabled=False))
        program = [asm_inst(Op.NOP)] * 20 + [halt_word()]
        for machine in (cached, uncached):
            machine.add_code(8, program, ring=4)
            machine.start(8, 0, ring=4)
            machine.run()
        assert cached.proc.cycles < uncached.proc.cycles

    def test_invalid_stack_rule_rejected(self, memory):
        with pytest.raises(ConfigurationError):
            Processor(memory, stack_rule="bogus")

    def test_invalid_nrings_rejected(self, memory):
        with pytest.raises(ConfigurationError):
            Processor(memory, nrings=9)

    def test_stack_rule_simple(self):
        machine = BareMachine(stack_rule="simple")
        assert machine.proc.stack_segno_for_call(3, 5) == 3

    def test_stack_rule_dbr_cross_ring(self):
        machine = BareMachine()
        machine.proc.dbr.stack = 16
        assert machine.proc.stack_segno_for_call(3, 5) == 19

    def test_stack_rule_dbr_same_ring_keeps_stack_pointer(self):
        machine = BareMachine()
        machine.regs.pr(6).load(42, 10, 4)
        assert machine.proc.stack_segno_for_call(4, 4) == 42


class TestRCU:
    def test_rcu_without_saved_state_faults(self, bare):
        bare.add_code(8, [asm_inst(Op.RCU)], ring=0)
        bare.start(8, 0, ring=0)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.ILLEGAL_OPCODE
