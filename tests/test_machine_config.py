"""MachineConfig: the validated description of a machine's shape.

``Machine.__init__`` accepts a dozen knobs whose legal combinations are
constrained by the tier stack; ``MachineConfig.validate`` makes the
matrix explicit and rejects contradictions with a clear error before
any machine state is built.  Pinned here:

* defaults mirror ``Machine.__init__`` exactly (a default config builds
  a machine identical to ``Machine()``);
* every contradictory knob combination is rejected, and every legal
  combination passes;
* ``Machine.from_config`` validates and builds.
"""

import pytest

from repro.errors import ConfigurationError
from repro.hardening import HardeningConfig
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


class TestDefaults:
    def test_default_config_is_valid(self):
        MachineConfig().validate()

    def test_default_config_builds_a_default_machine(self):
        built = Machine.from_config(MachineConfig())
        plain = Machine()
        assert built.fast_gate == plain.fast_gate
        assert built.processor.hardware_rings == plain.processor.hardware_rings
        assert (
            built.processor.access_cache.enabled
            is plain.processor.access_cache.enabled
        )
        assert built.hardening == plain.hardening

    def test_machine_kwargs_cover_every_machine_knob(self):
        import inspect

        knobs = set(inspect.signature(Machine.__init__).parameters) - {
            "self"
        }
        assert set(MachineConfig().machine_kwargs()) == knobs


class TestRejections:
    @pytest.mark.parametrize(
        "kwargs,fragment",
        [
            ({"memory_words": 0}, "memory_words"),
            ({"memory_words": -5}, "memory_words"),
            ({"sdw_cache_slots": 0}, "sdw_cache_slots"),
            ({"stack_rule": "tower"}, "stack rule"),
            (
                {"block_tier_enabled": True, "fast_path_enabled": False},
                "block_tier_enabled",
            ),
            (
                {"jit_tier_enabled": True, "fast_path_enabled": False},
                "jit_tier_enabled",
            ),
            (
                {"jit_tier_enabled": True, "block_tier_enabled": False},
                "superblock",
            ),
            ({"hardening": "auth_return_stack"}, "HardeningConfig"),
        ],
    )
    def test_contradiction_rejected_with_clear_error(self, kwargs, fragment):
        with pytest.raises(ConfigurationError) as excinfo:
            MachineConfig(**kwargs).validate()
        assert fragment in str(excinfo.value)

    def test_from_config_validates(self):
        with pytest.raises(ConfigurationError):
            Machine.from_config(
                MachineConfig(
                    jit_tier_enabled=True, fast_path_enabled=False
                )
            )

    def test_from_config_rejects_non_config(self):
        with pytest.raises(TypeError):
            Machine.from_config({"memory_words": 1024})


class TestLegalMatrix:
    #: every legal (fast_path, block, jit) combination; None follows
    #: the tier below
    LEGAL = [
        (False, None, None),
        (False, False, False),
        (False, False, None),
        (True, None, None),
        (True, False, False),
        (True, True, None),
        (True, True, True),
        (True, None, True),
    ]

    @pytest.mark.parametrize("fast_path,block,jit", LEGAL)
    def test_legal_tier_combinations_build(self, fast_path, block, jit):
        config = MachineConfig(
            fast_path_enabled=fast_path,
            block_tier_enabled=block,
            jit_tier_enabled=jit,
        )
        machine = Machine.from_config(config)
        assert machine.processor.access_cache.enabled is fast_path

    def test_hardened_config_builds_hardened_machine(self):
        config = MachineConfig(
            hardening=HardeningConfig.from_flags(
                ["auth_return_stack", "nx_brackets"]
            )
        )
        machine = Machine.from_config(config)
        assert machine.processor.auth_stack is not None
        assert machine.processor.nx_brackets
        assert machine.processor.domains is None

    def test_jit_none_with_fast_path_off_is_legal(self):
        """None means 'follow the tier below' — never a contradiction."""
        machine = Machine.from_config(
            MachineConfig(fast_path_enabled=False)
        )
        assert machine.processor.access_cache.enabled is False
