"""The Machine facade, services, tracing, metrics, paging integration."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.sim.machine import Machine
from repro.sim.metrics import MetricsSnapshot
from repro.sim.trace import TraceLog

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

HELLO = """
        .seg    hello
main::  lda     =42
        eap4    back
        call    l_write,*
back:   halt
l_write: .its   svc$write
"""


def hello_process(machine):
    user = machine.add_user("alice")
    machine.store_program(">udd>alice>hello", HELLO, acl=USER_ACL)
    process = machine.login(user)
    machine.initiate(process, ">udd>alice>hello")
    return process


class TestMachineFacade:
    def test_quickstart_flow(self, machine):
        process = hello_process(machine)
        result = machine.run(process, "hello$main", ring=4)
        assert result.halted
        assert result.console == [42]
        assert result.ring == 4
        assert result.ring_crossings == 2

    def test_run_result_counters(self, machine):
        process = hello_process(machine)
        result = machine.run(process, "hello$main", ring=4)
        assert result.instructions > 0
        assert result.cycles > result.instructions

    def test_store_data(self, machine):
        user = machine.add_user("u")
        machine.store_data(
            ">d", [1, 2, 3], acl=[AclEntry("*", RingBracketSpec.data(4))]
        )
        process = machine.login(user)
        segno = machine.initiate(process, ">d")
        sdw = process.dseg.get(segno)
        assert machine.memory.peek_block(sdw.addr, 3) == [1, 2, 3]

    def test_services_gate_extension_limit(self, machine):
        """Rings 6-7 have no access to supervisor gates (paper p. 35)."""
        source = HELLO.replace("RingBracketSpec", "")  # no-op guard
        user = machine.add_user("u")
        machine.store_program(
            ">t>p",
            HELLO.replace(".seg    hello", ".seg    p"),
            acl=[AclEntry("*", RingBracketSpec.procedure(6))],
        )
        process = machine.login(user)
        machine.initiate(process, ">t>p")
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "p$main", ring=6)
        assert excinfo.value.code is FaultCode.ACV_OUTSIDE_CALL_BRACKET

    def test_services_bump_counter_persists(self, machine):
        src = HELLO.replace("svc$write", "svc$bump")
        user = machine.add_user("u")
        machine.store_program(">t>p", src.replace("hello", "prog"), acl=USER_ACL)
        process = machine.login(user)
        machine.initiate(process, ">t>p")
        first = machine.run(process, "prog$main", ring=4)
        second = machine.run(process, "prog$main", ring=4)
        assert (first.a, second.a) == (1, 2)

    def test_user_cannot_touch_svcdata_directly(self, machine):
        """The bump counter is reachable only through the gate."""
        src = """
        .seg    prog
main::  lda     l_counter,*
        halt
l_counter: .its svcdata$counter
"""
        user = machine.add_user("u")
        machine.store_program(">t>prog", src, acl=USER_ACL)
        process = machine.login(user)
        machine.initiate(process, ">t>prog")
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "prog$main", ring=4)
        assert excinfo.value.code is FaultCode.ACV_READ_BRACKET


class TestPagedMachine:
    def test_program_runs_identically_paged(self):
        """Paging is transparent to protection (paper p. 7): identical
        results, more cycles."""
        plain = Machine(paged=False)
        paged = Machine(paged=True)
        results = {}
        for key, machine in (("plain", plain), ("paged", paged)):
            process = hello_process(machine)
            results[key] = machine.run(process, "hello$main", ring=4)
        assert results["plain"].console == results["paged"].console == [42]
        assert results["plain"].a == results["paged"].a
        assert results["paged"].cycles > results["plain"].cycles

    def test_missing_page_serviced_transparently(self):
        machine = Machine(paged=True)
        process = hello_process(machine)
        # unmap a page of the hello segment after initiation
        active = machine.supervisor.activate(">udd>alice>hello")
        active.placed.page_table.unmap_page(0)
        machine.processor.invalidate_sdw(active.segno)
        result = machine.run(process, "hello$main", ring=4)
        assert result.halted
        assert result.console == [42]
        assert result.faults >= 1  # the page fault was serviced


class TestTraceAndMetrics:
    def test_trace_captures_instructions(self, machine):
        process = hello_process(machine)
        trace = TraceLog()
        trace.attach(machine.processor)
        machine.run(process, "hello$main", ring=4)
        trace.detach()
        text = trace.render()
        assert "CALL" in text
        assert "RETURN" in text

    def test_trace_limit(self, machine):
        trace = TraceLog(limit=2)
        trace.note("one")
        trace.note("two")
        trace.note("three")
        assert len(trace) == 2

    def test_metrics_snapshot_delta(self, machine):
        process = hello_process(machine)
        before = MetricsSnapshot.collect(machine.processor)
        machine.run(process, "hello$main", ring=4, reset_counters=False)
        after = MetricsSnapshot.collect(machine.processor)
        delta = after.delta(before)
        assert delta["instructions"] > 0
        assert delta["calls"] == 1
        assert delta["returns"] == 1
        assert delta["ring_crossings"] == 2

    def test_sdw_cache_metrics_flow(self, machine):
        process = hello_process(machine)
        machine.run(process, "hello$main", ring=4)
        snap = MetricsSnapshot.collect(machine.processor)
        assert snap.sdw_hits > 0
