"""Assembler/disassembler round-trips, hypothesis-driven."""

from hypothesis import given, strategies as st

from repro.asm import assemble
from repro.asm.disasm import disassemble_word
from repro.cpu.isa import Op
from repro.formats.instruction import Instruction

#: Opcodes with a memory operand the disassembler prints symmetrically.
OPERAND_OPS = [
    Op.LDA, Op.LDQ, Op.ADA, Op.SBA, Op.ANA, Op.ORA, Op.ERA,
    Op.STA, Op.STQ, Op.STZ, Op.AOS,
    Op.SPR0, Op.SPR3, Op.SPR7,
    Op.EAP0, Op.EAP4, Op.EAP7,
    Op.TRA, Op.TZE, Op.TNZ, Op.TMI, Op.TPL,
    Op.CALL, Op.RETURN,
]


@st.composite
def encodable_instructions(draw):
    op = draw(st.sampled_from(OPERAND_OPS))
    offset = draw(st.integers(0, (1 << 18) - 1))
    prflag = draw(st.booleans())
    prnum = draw(st.integers(0, 7)) if prflag else 0
    indirect = draw(st.booleans())
    immediate = False
    indexed = False
    if op.operand == "read" and not op.is_spr:
        choice = draw(st.sampled_from(["none", "immediate", "indexed"]))
        immediate = choice == "immediate" and not indirect
        indexed = choice == "indexed"
    if op.transfer or op.is_eap or op.is_spr:
        immediate = False
    from repro.formats.instruction import TAG_IMMEDIATE, TAG_INDEX_A, TAG_NONE

    tag = TAG_IMMEDIATE if immediate else (TAG_INDEX_A if indexed else TAG_NONE)
    if immediate:
        prflag, prnum, indirect = False, 0, False
    return Instruction(
        opcode=op.number,
        offset=offset,
        indirect=indirect,
        prflag=prflag,
        prnum=prnum,
        tag=tag,
    )


class TestRoundTrip:
    @given(encodable_instructions())
    def test_disassemble_then_reassemble(self, inst):
        """disasm(word) reassembles to the identical word."""
        word = inst.pack()
        line = "        " + disassemble_word(word)
        image = assemble(line + "\n")
        assert image.words == [word]

    @given(st.integers(0, 2**36 - 1))
    def test_disassembler_total(self, word):
        """Every 36-bit word disassembles to *something* printable."""
        text = disassemble_word(word)
        assert isinstance(text, str) and text
