"""The adversary subsystem: attack corpus, fault oracle, serving A/B.

Three layers of assurance, mirroring the subsystem's design:

* the **corpus** is deterministic — same seed, same attack programs —
  and every generated attack carries an expected-fault oracle;
* the **harness** proves each attack faults with exactly the oracle's
  code on every execution tier (interpreter, fast path, superblock,
  JIT, fast gate, snapshot-restore-resume), with the full architectural
  figure bit-identical across tiers, on the ringed *and* the software
  (GE 645) profile;
* the **serving catalog** exposes the attacks (and the paper's ported
  ring stories) as gate-call programs, where the only legal outcome of
  an attack call is a ``machine_fault`` response naming the oracle's
  fault code.

Plus the fault-path hygiene the corpus forced: a faulting gate call
must leave no residue — a later legal call produces the same
architectural figure as on a machine that never hosted the attack, the
processor's fault save-stack does not grow across aborted runs, and
``reset_counters`` clears the fault-side diagnostics too.
"""

import asyncio
import json

import pytest

from repro.adversary.corpus import (
    ATTACK_FAMILIES,
    DEFAULT_SEED,
    HARDENED_FAMILIES,
    build_attack,
    generate_corpus,
)
from repro.adversary.harness import (
    SECURITY_KEYS,
    TIER_NAMES,
    install_attack,
    run_corpus,
    run_entry,
)
from repro.cpu.faults import Fault
from repro.errors import ConfigurationError
from repro.krnl.supervisor import ABORT_LOG_LIMIT
from repro.serve.catalog import KNOWN_ARGS, build_program, install_image
from repro.serve.gateway import GatewayConfig, RingGateway
from repro.serve.loadgen import run_load
from repro.sim.machine import Machine
from repro.sim.metrics import MetricsSnapshot

#: a fast cross-section for full-tier-matrix sweeps: one laundering
#: attack, one forged return, one plain bracket violation, one
#: privileged instruction
SLICE = ("launder_call", "return_forge_gate", "read_bracket", "privileged")


class TestCorpus:
    def test_deterministic(self):
        first = generate_corpus(seed=7, per_family=2)
        second = generate_corpus(seed=7, per_family=2)
        assert [p.summary() for p in first] == [p.summary() for p in second]

    def test_one_program_per_family_per_seed(self):
        corpus = generate_corpus(per_family=1)
        assert len(corpus) == len(ATTACK_FAMILIES)
        assert len({p.name for p in corpus}) == len(corpus)

    def test_seed_changes_programs(self):
        a = generate_corpus(seed=1, per_family=1)
        b = generate_corpus(seed=2, per_family=1)
        assert [p.name for p in a] != [p.name for p in b]

    def test_summary_shape(self):
        program = build_attack("gate_skip", 5, 3)
        summary = program.summary()
        assert summary["family"] == "gate_skip"
        assert summary["expect_code"] == "ACV_NOT_GATE"
        assert summary["ring"] == 3
        assert summary["program_words"] > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_attack("no_such_family", 1, 4)
        with pytest.raises(ConfigurationError):
            build_attack("read_bracket", 1, 1)  # below MIN_ATTACK_RING
        with pytest.raises(ConfigurationError):
            build_attack("read_bracket", -1, 4)


class TestOracleHarness:
    def test_full_corpus_on_interpreter_and_jit(self):
        report = run_corpus(per_family=1, tiers=("interp", "jit"))
        assert report["ok"], [
            p["problems"] for p in report["programs"] if not p["ok"]
        ]
        assert report["total"] == len(ATTACK_FAMILIES)

    def test_slice_across_every_tier(self):
        report = run_corpus(per_family=1, families=SLICE, tiers=TIER_NAMES)
        assert report["ok"], [
            p["problems"] for p in report["programs"] if not p["ok"]
        ]

    def test_baseline645_fault_identity(self):
        """Software rings fault with the same verdict as the hardware."""
        for family in SLICE:
            program = build_attack(family, DEFAULT_SEED, 4)
            ringed = run_entry(program, "interp", hardware_rings=True)
            soft = run_entry(program, "interp", hardware_rings=False)
            for key in SECURITY_KEYS:
                assert ringed["figure"][key] == soft["figure"][key], (
                    family,
                    key,
                )

    def test_jit_parity_backstop(self, monkeypatch):
        """REPRO_JIT_PARITY=1 co-executes traces; verdicts must hold."""
        monkeypatch.setenv("REPRO_JIT_PARITY", "1")
        report = run_corpus(
            per_family=1, families=("launder_transfer",), tiers=("jit",)
        )
        assert report["ok"], report["programs"][0]["problems"]

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            run_corpus(per_family=1, families=SLICE[:1], tiers=("warp",))


class TestFaultPathHygiene:
    MACHINE_KW = dict(services=False, jit_tier_enabled=True, fast_gate=True)

    def test_fault_then_legal_call_cold_figure(self):
        """A hosted attack leaves no residue in later legal figures."""
        tainted = Machine(**self.MACHINE_KW)
        attack = build_attack("nongate_call", 3, 4)
        process = install_attack(tainted, attack)
        with pytest.raises(Fault):
            tainted.run(process, attack.entry, ring=attack.ring)
        entry = install_image(
            tainted, process, build_program("call_loop", {"count": 4})
        )
        result = tainted.run(process, entry, ring=4)
        figure = MetricsSnapshot.collect(tainted.processor).architectural()

        pristine = Machine(**self.MACHINE_KW)
        clean = pristine.login(pristine.add_user("adversary"))
        entry = install_image(
            pristine, clean, build_program("call_loop", {"count": 4})
        )
        expected = pristine.run(clean, entry, ring=4)
        assert result.a == expected.a
        assert (
            figure
            == MetricsSnapshot.collect(pristine.processor).architectural()
        )

    def test_save_stack_does_not_grow_across_aborts(self):
        machine = Machine(**self.MACHINE_KW)
        attack = build_attack("write_bracket", 2, 3)
        process = install_attack(machine, attack)
        depths = []
        for _ in range(3):
            with pytest.raises(Fault):
                machine.run(process, attack.entry, ring=attack.ring)
            depths.append(len(machine.processor._save_stack))
        assert depths[0] == depths[1] == depths[2]

    def test_aborted_faults_bounded(self):
        machine = Machine(**self.MACHINE_KW)
        attack = build_attack("privileged", 9, 3)
        process = install_attack(machine, attack)
        for _ in range(ABORT_LOG_LIMIT + 8):
            with pytest.raises(Fault):
                machine.run(
                    process,
                    attack.entry,
                    ring=attack.ring,
                    reset_counters=False,
                )
        assert len(machine.supervisor.aborted_faults) == ABORT_LOG_LIMIT

    def test_reset_counters_clears_fault_diagnostics(self):
        machine = Machine(**self.MACHINE_KW)
        attack = build_attack("bounds", 11, 3)
        process = install_attack(machine, attack)
        with pytest.raises(Fault):
            machine.run(process, attack.entry, ring=attack.ring)
        assert machine.supervisor.aborted_faults  # the attack is logged
        entry = install_image(
            machine, process, build_program("echo", {"value": 9})
        )
        result = machine.run(process, entry, ring=4)  # reset_counters=True
        assert result.a == 9
        assert machine.supervisor.aborted_faults == []


class TestCatalogStories:
    def test_known_args_are_per_program(self):
        # 'count' belongs to call_loop, not to the stories
        with pytest.raises(ConfigurationError):
            build_program("debug", {"count": 3})
        with pytest.raises(ConfigurationError):
            build_program("attack", {"family": "bounds", "n": 1})
        assert set(KNOWN_ARGS) == {
            "call_loop",
            "compute",
            "echo",
            "mutual_suspicion",
            "proprietary",
            "grading_sandbox",
            "debug",
            "layered",
            "attack",
        }

    def test_attack_requires_family(self):
        with pytest.raises(ConfigurationError):
            build_program("attack", {})

    def test_story_outcomes_standalone(self):
        """Each ported story proves its point on a bare machine."""
        machine = Machine(services=False)
        process = machine.login(machine.add_user("u"))

        entry = install_image(
            machine,
            process,
            build_program("mutual_suspicion", {"attacker_ring": 2}),
        )
        assert machine.run(process, entry, ring=4).a == 0o102

        entry = install_image(
            machine, process, build_program("proprietary", {"value": 5})
        )
        assert machine.run(process, entry, ring=4).a == 27

        entry = install_image(
            machine, process, build_program("grading_sandbox", {"variant": 0})
        )
        assert machine.run(process, entry, ring=4).a == 0  # PASS

        entry = install_image(
            machine, process, build_program("layered", {"n": 1})
        )
        result = machine.run(process, entry, ring=4)
        assert result.a == 1101 and result.ring_crossings == 4

    def test_story_faults_standalone(self):
        machine = Machine(services=False)
        process = machine.login(machine.add_user("u"))
        for name, args, code in (
            ("mutual_suspicion", {"attacker_ring": 3}, "ACV_READ_BRACKET"),
            ("proprietary", {"peek": 1}, "ACV_NO_READ"),
            (
                "grading_sandbox",
                {"variant": 1},
                "ACV_OUTSIDE_CALL_BRACKET",
            ),
            ("layered", {"direct": 1}, "ACV_OUTSIDE_CALL_BRACKET"),
        ):
            entry = install_image(
                machine, process, build_program(name, args)
            )
            with pytest.raises(Fault) as excinfo:
                machine.run(process, entry, ring=4)
            assert excinfo.value.code.name == code, name

    def test_debug_story_ring_decides(self):
        machine = Machine(services=False)
        process = machine.login(machine.add_user("u"))
        entry = install_image(
            machine, process, build_program("debug", {"value": 44})
        )
        with pytest.raises(Fault) as excinfo:
            machine.run(process, entry, ring=5)
        assert excinfo.value.code.name == "ACV_WRITE_BRACKET"
        assert machine.run(process, entry, ring=4).halted

    def test_install_image_idempotent(self):
        machine = Machine(services=False)
        process = machine.login(machine.add_user("u"))
        image = build_program("layered", {"n": 2})
        first = install_image(machine, process, image)
        second = install_image(machine, process, image)
        assert first == second


class TestServingAB:
    @staticmethod
    def _config(profile):
        return GatewayConfig(
            port=0,
            workers=1,
            backend="thread",
            call_timeout=30.0,
            drain_timeout=30.0,
            machine_profile=profile,
        )

    def _ab(self, profile):
        async def body():
            gateway = RingGateway(self._config(profile))
            await gateway.start()
            try:
                attack = await run_load(
                    "127.0.0.1",
                    gateway.port,
                    sessions=3,
                    calls=2,
                    program="attack",
                    args={"family": "gate_skip", "seed": 5},
                    expect_fault="ACV_NOT_GATE",
                    expect_profile=profile,
                )
                legal = await run_load(
                    "127.0.0.1",
                    gateway.port,
                    sessions=2,
                    calls=2,
                    program="call_loop",
                    args={"count": 2},
                    expect_profile=profile,
                )
            finally:
                await gateway.stop()
            return attack, legal

        return asyncio.run(body())

    @pytest.mark.parametrize("profile", ["ringed", "baseline645"])
    def test_attacks_fault_and_legal_calls_land(self, profile):
        attack, legal = self._ab(profile)
        assert attack.check() == []
        assert attack.expected_faults == attack.sent
        assert attack.unexpected_ok == 0
        assert legal.check() == []
        assert legal.ok == legal.sent

    def test_wrong_expected_profile_is_a_problem(self):
        async def body():
            gateway = RingGateway(self._config("ringed"))
            await gateway.start()
            try:
                report = await run_load(
                    "127.0.0.1",
                    gateway.port,
                    sessions=1,
                    calls=1,
                    program="echo",
                    args={},
                    expect_profile="baseline645",
                )
            finally:
                await gateway.stop()
            return report

        report = asyncio.run(body())
        assert any("profile" in p for p in report.check())

    def test_profile_does_not_compose_with_sessions(self):
        with pytest.raises(ConfigurationError):
            RingGateway(
                GatewayConfig(
                    port=0,
                    workers=1,
                    backend="thread",
                    max_sessions=4,
                    machine_profile="baseline645",
                )
            )

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            RingGateway(
                GatewayConfig(
                    port=0,
                    workers=1,
                    backend="thread",
                    machine_profile="ge635",
                )
            )


class TestHardenedFamilies:
    """The three hardening-gated families and their ablation reports."""

    def test_registry_names_real_families_and_flags(self):
        for family, flag in HARDENED_FAMILIES.items():
            assert family in ATTACK_FAMILIES
            program = build_attack(family, DEFAULT_SEED, 4)
            assert program.hardening == flag
            assert program.unhardened_outcome == "halts"

    def test_classic_families_carry_no_hardening(self):
        for family in SLICE:
            program = build_attack(family, DEFAULT_SEED, 4)
            assert program.hardening is None
            assert program.summary()["hardening"] is None

    def test_harness_report_carries_both_ablation_halves(self):
        report = run_corpus(
            per_family=1,
            families=tuple(HARDENED_FAMILIES),
            tiers=("interp", "jit"),
        )
        assert report["ok"], [
            p["problems"] for p in report["programs"] if not p["ok"]
        ]
        for entry in report["programs"]:
            assert entry["hardening"] == HARDENED_FAMILIES[entry["family"]]
            assert entry["unhardened_outcome"] == "halts"
            # flag-on half hit the oracle fault on every tier...
            for figure in entry["figures"].values():
                assert figure["faulted"]
                assert figure["code"] == entry["expected"]["code"]
            # ...and the flag-off half ran each attack to completion
            assert set(entry["ablation"]) == {"interp", "jit"}
            for figure in entry["ablation"].values():
                assert not figure["faulted"]

    def test_hardened_families_on_baseline645(self):
        report = run_corpus(
            per_family=1,
            families=tuple(HARDENED_FAMILIES),
            tiers=("interp", "jit"),
            hardware_rings=False,
        )
        assert report["ok"], [
            p["problems"] for p in report["programs"] if not p["ok"]
        ]


class TestServingHardened:
    """Hardening as a serving knob: ``--hardening`` on the gateway."""

    @staticmethod
    def _config(hardening, **kwargs):
        return GatewayConfig(
            port=0,
            workers=1,
            backend="thread",
            call_timeout=30.0,
            drain_timeout=30.0,
            hardening=hardening,
            **kwargs,
        )

    def test_hardened_gateway_defeats_its_family(self):
        async def body():
            gateway = RingGateway(self._config(("auth_return_stack",)))
            await gateway.start()
            try:
                attack = await run_load(
                    "127.0.0.1",
                    gateway.port,
                    sessions=2,
                    calls=2,
                    program="attack",
                    args={"family": "auth_return_forge", "seed": 5},
                    expect_fault="ACV_AUTH_RETURN",
                    expect_hardening=["auth_return_stack"],
                )
                legal = await run_load(
                    "127.0.0.1",
                    gateway.port,
                    sessions=2,
                    calls=2,
                    program="call_loop",
                    args={"count": 2},
                    expect_hardening=["auth_return_stack"],
                )
            finally:
                await gateway.stop()
            return attack, legal

        attack, legal = asyncio.run(body())
        assert attack.check() == []
        assert attack.expected_faults == attack.sent
        assert attack.unexpected_ok == 0
        assert legal.check() == []
        assert legal.ok == legal.sent

    def test_unhardened_gateway_lets_the_family_through(self):
        """The same attack served without the flag runs to completion —
        the live half of the ablation story."""

        async def body():
            gateway = RingGateway(self._config(()))
            await gateway.start()
            try:
                return await run_load(
                    "127.0.0.1",
                    gateway.port,
                    sessions=1,
                    calls=2,
                    program="attack",
                    args={"family": "auth_return_forge", "seed": 5},
                    expect_hardening=[],
                )
            finally:
                await gateway.stop()

        report = asyncio.run(body())
        assert report.check() == []
        assert report.ok == report.sent
        assert report.expected_faults == 0

    def test_wrong_expected_hardening_is_a_problem(self):
        async def body():
            gateway = RingGateway(self._config(("nx_brackets",)))
            await gateway.start()
            try:
                return await run_load(
                    "127.0.0.1",
                    gateway.port,
                    sessions=1,
                    calls=1,
                    program="echo",
                    args={},
                    expect_hardening=["auth_return_stack"],
                )
            finally:
                await gateway.stop()

        report = asyncio.run(body())
        assert any("hardening" in p for p in report.check())

    def test_hardening_does_not_compose_with_sessions(self):
        with pytest.raises(ConfigurationError):
            RingGateway(
                self._config(("ring_domains",), max_sessions=4)
            )

    def test_unknown_hardening_flag_rejected(self):
        with pytest.raises(ConfigurationError):
            RingGateway(self._config(("shadow_stack",)))


class TestAdversaryDumpCLI:
    """``repro adversary dump``: the oracle is visible without running."""

    def test_json_carries_the_full_oracle(self, capsys):
        from repro.cli import main

        assert main(["adversary", "dump", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(ATTACK_FAMILIES)
        by_family = {p["family"]: p for p in payload["programs"]}
        assert set(by_family) == set(ATTACK_FAMILIES)
        for summary in by_family.values():
            for key in (
                "expect_ring",
                "expect_segment",
                "hardening",
                "unhardened_outcome",
                "domains",
            ):
                assert key in summary, (summary["family"], key)
        forge = by_family["auth_return_forge"]
        assert forge["hardening"] == "auth_return_stack"
        assert forge["expect_code"] == "ACV_AUTH_RETURN"
        assert isinstance(forge["expect_ring"], int)
        assert isinstance(forge["expect_segment"], str)
        breach = by_family["domain_breach"]
        assert breach["hardening"] == "ring_domains"
        assert len(breach["domains"]) == 1
        # classic families: oracle fields present, hardening absent
        assert by_family["read_bracket"]["hardening"] is None

    def test_table_shows_oracle_columns(self, capsys):
        from repro.cli import main

        assert main(["adversary", "dump"]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[1]
        for column in ("at ring", "at segment", "needs flag"):
            assert column in header
        assert "auth_return_stack" in out
        assert "ring_domains" in out
        assert "nx_brackets" in out
