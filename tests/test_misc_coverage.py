"""Coverage for smaller surfaces: trace tails, sweep rendering,
indexed/indirect combinations, deep EAP chains."""

import pytest

from repro.analysis.report import format_table
from repro.analysis.sweeps import SweepPoint, render_sweep
from repro.cpu.isa import Op
from repro.sim.trace import TraceLog

from tests.helpers import BareMachine, asm_inst, halt_word, ind_word


class TestTraceLog:
    def test_render_tail(self):
        trace = TraceLog()
        for index in range(10):
            trace.note(f"event-{index}")
        tail = trace.render(last=3)
        assert "event-9" in tail and "event-6" not in tail

    def test_note_and_instruction_interleave(self, bare):
        bare.add_code(8, [asm_inst(Op.NOP), halt_word()], ring=4)
        trace = TraceLog()
        trace.attach(bare.proc)
        trace.note("before")
        bare.start(8, 0, ring=4)
        bare.run()
        trace.detach()
        text = trace.render()
        assert text.index("before") < text.index("NOP")

    def test_detach_stops_capture(self, bare):
        bare.add_code(8, [asm_inst(Op.NOP), halt_word()], ring=4)
        trace = TraceLog()
        trace.attach(bare.proc)
        trace.detach()
        bare.start(8, 0, ring=4)
        bare.run()
        assert len(trace) == 0


class TestSweepRendering:
    def test_render_sweep_table(self):
        points = [
            SweepPoint(
                trap_overhead=30,
                handler_cycles=150,
                hardware_cycles=13.0,
                software_cycles=371.0,
            )
        ]
        text = render_sweep(points)
        assert "28.5x" in text
        assert "150" in text

    def test_format_table_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text


class TestAddressingCombinations:
    def test_indexed_then_indirect(self, bare):
        """`lda table,x,*`: the index modifies the *initial* offset, the
        selected word is then chased as an indirect word."""
        bare.add_code(8, [0] * 16, ring=4)
        bare.add_data(9, [111, 222, 333], ring=4)
        base8 = bare.dseg.get(8).addr
        # a table of pointers at words 4..6 of the code segment
        bare.memory.load_image(
            base8 + 4, [ind_word(9, 0), ind_word(9, 1), ind_word(9, 2)]
        )
        program = [
            asm_inst(Op.LDA, offset=4, indexed=True, indirect=True),
            halt_word(),
        ]
        bare.memory.load_image(base8, program)
        for index, expected in ((0, 111), (1, 222), (2, 333)):
            bare.regs.set_a(index)
            bare.start(8, 0, ring=4)
            bare.run()
            assert bare.regs.a == expected

    def test_deep_eap_chain_accumulates_max_ring(self, bare):
        """EAP through a three-hop chain ends with the maximum ring any
        hop carried — pointer laundering is impossible."""
        bare.add_code(8, [0] * 8, ring=4)
        bare.add_segment(
            9, [0] * 8, r1=4, r2=7, r3=7, read=True, write=True, execute=False
        )
        base9 = bare.dseg.get(9).addr
        bare.memory.load_image(
            base9,
            [
                ind_word(9, 1, ring=0, chained=True),
                ind_word(9, 2, ring=6, chained=True),
                ind_word(9, 5, ring=0),
            ],
        )
        base8 = bare.dseg.get(8).addr
        bare.memory.load_image(
            base8, [asm_inst(Op.EAP3, offset=0, pr=1, indirect=True), halt_word()]
        )
        bare.start(8, 0, ring=4)
        bare.regs.pr(1).load(9, 0, 4)
        bare.run()
        pr3 = bare.regs.pr(3)
        assert (pr3.segno, pr3.wordno) == (9, 5)
        assert pr3.ring == 6  # the hop-2 influence survives to the end

    def test_call_with_indexed_target(self, bare):
        """CALL through an indexed pointer table: a jump-table of gates."""
        for ring in range(8):
            bare.add_segment(
                ring, size=16, r1=ring, r2=ring, r3=ring,
                read=True, write=True, execute=False,
            )
        bare.add_code(9, [0] * 4, ring=4, gate=2)
        base9 = bare.dseg.get(9).addr
        bare.memory.load_image(
            base9,
            [
                asm_inst(Op.LDA, offset=100, immediate=True),  # gate 0
                asm_inst(Op.LDA, offset=200, immediate=True),  # gate 1
            ],
        )
        # gates halt via a same-segment transfer to keep this compact
        bare.memory.load_image(base9 + 2, [halt_word()])
        bare.memory.load_image(
            base9,
            [
                asm_inst(Op.LDA, offset=100, immediate=True),
                asm_inst(Op.TRA, offset=2),
            ],
        )
        bare.add_code(8, [0] * 8, ring=4)
        base8 = bare.dseg.get(8).addr
        bare.memory.load_image(
            base8,
            [
                asm_inst(Op.EAP4, offset=2),
                asm_inst(Op.CALL, offset=4, indexed=True, indirect=True),
                halt_word(),
                0,
                ind_word(9, 0),
                ind_word(9, 1),
            ],
        )
        bare.regs.set_a(0)  # select jump-table entry 0
        bare.start(8, 0, ring=4)
        bare.run()
        assert bare.regs.a == 100
