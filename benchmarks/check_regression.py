"""Gate host-throughput regressions against the committed baseline.

Usage::

    python benchmarks/check_regression.py BENCH.json \
        [--baseline benchmarks/baseline.json] [--tolerance 0.2]

``BENCH.json`` is pytest-benchmark's ``--benchmark-json`` output from a
run of ``bench_host_throughput.py``.  The gate compares the *speedup
ratios* the benchmark records into ``extra_info`` — block tier vs. fast
path vs. everything off — not absolute instructions/sec: ratios divide
out the host, so one committed baseline works on laptops and CI runners
alike.  A measured ratio more than ``tolerance`` (default 20%) below
its baseline fails the run; improvements print a hint to refresh the
baseline but never fail.

Exit status: 0 pass, 1 regression, 2 input problem.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def load_measured(bench_json: Path, name: str) -> dict:
    """The ``extra_info`` of the named benchmark in a results file."""
    data = json.loads(bench_json.read_text())
    for bench in data.get("benchmarks", []):
        if bench.get("name") == name:
            return bench.get("extra_info", {})
    raise KeyError(
        f"benchmark {name!r} not found in {bench_json} "
        f"(got: {[b.get('name') for b in data.get('benchmarks', [])]})"
    )


def check(measured: dict, ratios: dict, tolerance: float) -> list:
    """Failure messages for every gated ratio (empty = pass).

    Two kinds of missing key both fail: a baseline ratio absent from
    the benchmark output (the benchmark silently stopped recording
    it), and a measured speedup ratio absent from the baseline (a new
    tier landed without committing its gate — exactly how a regression
    in a new tier would slip through unnoticed).
    """
    failures = []
    for key in sorted(k for k in measured if "speedup" in k):
        if key not in ratios:
            failures.append(
                f"{key}: measured but has no baseline entry — add it to "
                "baseline.json so the new ratio is gated"
            )
    for key, baseline in ratios.items():
        value = measured.get(key)
        if value is None:
            failures.append(f"{key}: missing from the benchmark output")
            continue
        floor = baseline * (1.0 - tolerance)
        verdict = "ok"
        if value < floor:
            verdict = "REGRESSION"
            failures.append(
                f"{key}: {value:.2f} is more than {tolerance:.0%} below "
                f"the baseline {baseline:.2f} (floor {floor:.2f})"
            )
        elif value > baseline * (1.0 + tolerance):
            verdict = "improved — consider refreshing baseline.json"
        print(
            f"  {key}: measured {value:.2f}, baseline {baseline:.2f} "
            f"[{verdict}]"
        )
    return failures


def check_ceilings(measured: dict, ceilings: dict, tolerance: float) -> list:
    """Failure messages for every gated ceiling (empty = pass).

    Ceilings are upper bounds — a parked-delta size ratio, a
    hydrate-miss latency multiple — so the comparison runs the other
    way round from ``check``: a measured value more than ``tolerance``
    *above* its ceiling fails, values comfortably below it print a
    refresh hint.  Missing keys fail in both directions, same as
    ratios.
    """
    failures = []
    for key, ceiling in ceilings.items():
        value = measured.get(key)
        if value is None:
            failures.append(f"{key}: missing from the benchmark output")
            continue
        roof = ceiling * (1.0 + tolerance)
        verdict = "ok"
        if value > roof:
            verdict = "REGRESSION"
            failures.append(
                f"{key}: {value:.4f} is more than {tolerance:.0%} above "
                f"the ceiling {ceiling:.4f} (roof {roof:.4f})"
            )
        elif value < ceiling * (1.0 - tolerance):
            verdict = "improved — consider lowering the ceiling"
        print(
            f"  {key}: measured {value:.4f}, ceiling {ceiling:.4f} "
            f"[{verdict}]"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", type=Path)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop below baseline (default 0.2)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        measured = load_measured(args.bench_json, baseline["benchmark"])
    except (OSError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"checking {args.bench_json} against {args.baseline}:")
    failures = check(measured, baseline.get("ratios", {}), args.tolerance)
    failures += check_ceilings(
        measured, baseline.get("ceilings", {}), args.tolerance
    )
    if failures:
        print("host-throughput regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("host throughput within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
