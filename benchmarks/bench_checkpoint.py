"""Experiment D1 — what durability costs.

Two claims to pin:

* **Checkpoint latency is bounded** (recorded always, gated by
  ``REPRO_BENCH_STRICT``): serialising, writing, reading, and restoring
  a full machine snapshot each complete in well under a second on any
  reasonable host — cheap enough for the workers' every-N-calls
  checkpoint cadence.
* **Journal overhead is small** (gated): running the same gate-call
  workload through a durable worker with the write-ahead journal on
  (batched fsync, checkpoints off) costs at most 15% wall-clock over
  the plain (non-durable) worker path.  The results themselves must be identical —
  durability is architecturally invisible — and the journal must
  replay verified, both asserted on every host.  The periodic
  checkpoint is a separate, tunable cost: its per-checkpoint latency
  and its amortised overhead at the production cadence are recorded
  alongside, ungated (they scale with the interval, not the calls).
"""

from __future__ import annotations

import os
import time

from conftest import build_call_loop_machine

import repro.serve.workers as workers
from repro.serve.workers import DurabilityConfig, GateCallEngine, _WorkerState
from repro.state.recover import JOURNAL_NAME, replay_journal
from repro.state.snapshot import (
    read_snapshot_file,
    restore_machine,
    snapshot_digest,
    snapshot_machine,
    write_snapshot_file,
)

STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: gate calls driven through each engine in the overhead comparison
CALLS = 150

#: call/return pairs per gate call — a serving-representative burst
#: (fsync cost is per journal batch, so it amortises over the calls a
#: batch covers; a trivially small call would measure the host's fsync
#: latency, not the journal's design)
COUNT = 64

#: acceptance ceiling for write-ahead-journal overhead on the call loop
OVERHEAD_CEILING = 0.15


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _job(i):
    return {
        "user": f"bench{i % 4}",
        "ring": 4 + i % 2,
        "program": "call_loop",
        "args": {"count": COUNT},
        "call_id": f"bench-{i}",
    }


def test_d1_snapshot_restore_latency(benchmark, tmp_path):
    """Snapshot, write, read, restore — each well under a second."""
    machine, process = build_call_loop_machine(count=64)
    machine.start(process, "caller$main", 4)
    machine.processor.run(max_steps=100_000)
    path = str(tmp_path / "machine.snap")

    snapshot_s, snap = _best_of(3, lambda: snapshot_machine(machine))
    write_s, _ = _best_of(3, lambda: write_snapshot_file(snap, path))
    read_s, loaded = _best_of(3, lambda: read_snapshot_file(path))
    restore_s, restored = _best_of(3, lambda: restore_machine(loaded))

    # the round trip is lossless: re-snapshotting the restored machine
    # reproduces the digest bit for bit
    assert snapshot_digest(snapshot_machine(restored)) == snapshot_digest(
        snap
    )

    benchmark.extra_info["snapshot_ms"] = round(snapshot_s * 1e3, 3)
    benchmark.extra_info["write_ms"] = round(write_s * 1e3, 3)
    benchmark.extra_info["read_ms"] = round(read_s * 1e3, 3)
    benchmark.extra_info["restore_ms"] = round(restore_s * 1e3, 3)
    benchmark.extra_info["snapshot_bytes"] = os.path.getsize(path)

    if STRICT:
        for label, seconds in (
            ("snapshot", snapshot_s),
            ("write", write_s),
            ("read", read_s),
            ("restore", restore_s),
        ):
            assert seconds < 1.0, f"{label} took {seconds:.3f}s"

    benchmark(lambda: restore_machine(snapshot_machine(machine)))


def test_d2_journal_overhead_within_budget(benchmark, tmp_path):
    """WAL-on worker <= 15% over the plain worker; results identical."""

    def plain_run():
        workers.configure_durability(None)
        state = _WorkerState()
        try:
            return [state.execute(_job(i)) for i in range(CALLS)]
        finally:
            workers.release_live_slots()

    def durable_run(root, checkpoint_interval):
        workers.configure_durability(
            DurabilityConfig(
                dir=str(root),
                slots=1,
                checkpoint_interval=checkpoint_interval,
                fsync_every=32,
            )
        )
        try:
            state = _WorkerState()
            results = [state.execute(_job(i)) for i in range(CALLS)]
            state.journal.sync()
            return state.slot_dir, results
        finally:
            workers.configure_durability(None)
            workers.release_live_slots()

    def timed_durable(label, checkpoint_interval):
        best = float("inf")
        slot_dir = results = None
        for attempt in range(3):
            root = tmp_path / f"{label}{attempt}"
            started = time.perf_counter()
            slot_dir, results = durable_run(root, checkpoint_interval)
            best = min(best, time.perf_counter() - started)
        return best, slot_dir, results

    plain_s, plain_results = _best_of(3, plain_run)
    # journal only: the checkpoint interval never fires mid-run
    journal_s, slot_dir, durable_results = timed_durable(
        "journal", CALLS + 1
    )
    # production cadence: checkpoints every 64 calls ride along
    cadence_s, _, _ = timed_durable("cadence", 64)

    # durability is invisible in the results the caller sees
    core = lambda rs: [{"payload": r["payload"], "metrics": r["metrics"]} for r in rs]
    assert core(durable_results) == core(plain_results)

    # and the journal it left behind replays verified, end to end
    report = replay_journal(
        os.path.join(slot_dir, JOURNAL_NAME), verify=True
    )
    assert report.verified == CALLS

    overhead = journal_s / plain_s - 1.0
    checkpoints = CALLS // 64
    benchmark.extra_info["calls"] = CALLS
    benchmark.extra_info["plain_ms"] = round(plain_s * 1e3, 1)
    benchmark.extra_info["journal_ms"] = round(journal_s * 1e3, 1)
    benchmark.extra_info["journal_overhead_pct"] = round(overhead * 100, 2)
    benchmark.extra_info["checkpoint_ms"] = round(
        max(0.0, cadence_s - journal_s) / max(1, checkpoints) * 1e3, 2
    )
    benchmark.extra_info["cadence64_overhead_pct"] = round(
        (cadence_s / plain_s - 1.0) * 100, 2
    )

    if STRICT:
        assert overhead <= OVERHEAD_CEILING, (
            f"write-ahead journal overhead {overhead:.1%} exceeds "
            f"{OVERHEAD_CEILING:.0%}"
        )

    benchmark(lambda: GateCallEngine().run_job(_job(0)))


def test_d3_snapshot_compression_tradeoff(benchmark, tmp_path):
    """zlib-compressed snapshots: smaller on disk, same machine back.

    Records the size/latency tradeoff of ``write_snapshot_file(...,
    compress=True)`` so the parking store's default (compress on) is a
    measured choice, not folklore.  Asserted on every host: the
    compressed file is strictly smaller, and restoring it reproduces
    the uncompressed snapshot's digest bit for bit (the checksum covers
    the uncompressed bytes, so corruption is still caught after
    inflation).
    """
    machine, process = build_call_loop_machine(count=64)
    machine.start(process, "caller$main", 4)
    machine.processor.run(max_steps=100_000)
    snap = snapshot_machine(machine)
    plain_path = str(tmp_path / "plain.snap")
    packed_path = str(tmp_path / "packed.snap")

    write_plain_s, _ = _best_of(3, lambda: write_snapshot_file(snap, plain_path))
    write_packed_s, _ = _best_of(
        3, lambda: write_snapshot_file(snap, packed_path, compress=True)
    )
    read_plain_s, _ = _best_of(3, lambda: read_snapshot_file(plain_path))
    read_packed_s, loaded = _best_of(3, lambda: read_snapshot_file(packed_path))

    assert snapshot_digest(loaded) == snapshot_digest(snap)
    assert snapshot_digest(snapshot_machine(restore_machine(loaded))) == (
        snapshot_digest(snap)
    )

    plain_bytes = os.path.getsize(plain_path)
    packed_bytes = os.path.getsize(packed_path)
    assert packed_bytes < plain_bytes

    benchmark.extra_info["plain_bytes"] = plain_bytes
    benchmark.extra_info["packed_bytes"] = packed_bytes
    benchmark.extra_info["compression_ratio"] = round(
        packed_bytes / plain_bytes, 4
    )
    benchmark.extra_info["write_plain_ms"] = round(write_plain_s * 1e3, 3)
    benchmark.extra_info["write_packed_ms"] = round(write_packed_s * 1e3, 3)
    benchmark.extra_info["read_plain_ms"] = round(read_plain_s * 1e3, 3)
    benchmark.extra_info["read_packed_ms"] = round(read_packed_s * 1e3, 3)

    benchmark(lambda: write_snapshot_file(snap, packed_path, compress=True))
