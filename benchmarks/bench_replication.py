"""Experiment R1 — what replication costs, and what failover buys.

Two claims to pin:

* **Shipping overhead is bounded** (ceiling, gated by
  ``REPRO_BENCH_STRICT``): serving the same gate-call load through a
  gateway with ``--replicas 1`` — the slot journal tailed, framed,
  shipped over TCP to an in-process standby, applied and verified on a
  warm replica machine, acks absorbed — costs at most 15% wall clock
  over the identical durable gateway with replication off.  The
  shipper rides the gateway's event loop and the applier its own
  executor thread, so the primary's call path should barely notice.
* **Hot failover beats cold restore** (ratio, gated >= 3x): promoting
  a warm follower (replay only the few records the shipping lag left
  behind, snapshot, recover the successor from that snapshot with an
  empty tail) is at least 3x faster than the cold path the previous
  PRs offered — a fresh machine replaying the slot's entire journal
  tail.  The gap widens with journal length; the gate uses a modest
  48-call tail so it holds even on slow hosts.

Exactness is asserted on every host, never gated: both recovery paths
must land on architectural counters bit-identical to the primary's.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import repro.serve.workers as workers
from repro.serve.admission import RingPolicy
from repro.serve.gateway import GatewayConfig, RingGateway
from repro.serve.loadgen import run_load
from repro.serve.workers import DurabilityConfig, _WorkerState
from repro.state.recover import JOURNAL_NAME, SNAPSHOT_NAME, recover_slot
from repro.state.replication import JournalTailer, ReplicaApplier, read_frames

STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: serving-burst shape for the overhead comparison
SESSIONS = 8
CALLS = 25
COUNT = 16

#: journal length for the failover comparison, and how far behind the
#: follower is when the primary dies (a realistic ack-window of lag).
#: The hot path pays a fixed snapshot write+read+restore (~tens of ms)
#: regardless of journal length, so the tail must be long enough that
#: cold replay's linear cost dominates — the regime failover exists
#: for; at a handful of records the two paths tie and neither hurts.
TAIL_CALLS = 96
FAILOVER_COUNT = 32
SHIP_LAG = 4

#: acceptance ceiling: replicated serving over plain durable serving.
#: Only meaningful when the standby process has a core of its own —
#: a replica replays every call, so on a single shared core the wall
#: clock charges the primary for the replica's CPU, which is exactly
#: what a second core absorbs in production.  Same reasoning as the
#: core-count precondition on bench_serve's throughput floor.
OVERHEAD_CEILING = 0.15
OVERHEAD_MIN_CORES = 2

#: acceptance floor: hot promotion over cold whole-journal replay
SPEEDUP_FLOOR = 3.0

REPS = 3


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _job(i, count=COUNT):
    return {
        "user": f"bench{i % 4}",
        "ring": 4,
        "program": "call_loop",
        "args": {"count": count},
        "call_id": f"bench-{i}",
    }


def _spawn_standby(root):
    """An external ``repro standby`` process; returns (proc, endpoint).

    The replica re-executes every shipped call, so it must live in its
    own process — exactly as in production — or the measurement would
    charge the primary for the replica's CPU.
    """
    src = os.path.dirname(os.path.dirname(os.path.abspath(__import__("repro").__file__)))
    env = dict(os.environ, PYTHONPATH=src)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "standby", "--dir", str(root), "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"unexpected standby banner: {line!r}"
    return proc, f"{match.group(1)}:{match.group(2)}"


def _serve_burst(root, endpoint=None):
    """One gateway lifecycle; returns the loadgen's own elapsed time."""

    async def main():
        config = GatewayConfig(
            port=0,
            workers=2,
            backend="thread",
            durability_dir=str(root),
            checkpoint_interval=10_000,
            default_policy=RingPolicy(rate=None, max_pending=256),
            replica_endpoints=(endpoint,) if endpoint else (),
            ship_every=8,
            ack_window=4,
        )
        gateway = RingGateway(config)
        await gateway.start()
        try:
            report = await run_load(
                "127.0.0.1",
                gateway.port,
                sessions=SESSIONS,
                calls=CALLS,
                args={"count": COUNT},
            )
        finally:
            await gateway.stop()
        assert report.check() == [], report.check()
        return report

    return asyncio.run(main())


def test_r1_replication_costs(benchmark, tmp_path):
    """Ship overhead <= 15%; hot failover >= 3x cold restore; exact."""

    # -- Part A: serving overhead of live shipping -------------------
    plain_s = replicated_s = float("inf")
    plain_report = replicated_report = None
    for attempt in range(REPS):
        report = _serve_burst(tmp_path / f"plain{attempt}")
        plain_s = min(plain_s, report.elapsed_seconds)
        plain_report = report
        root = tmp_path / f"repl{attempt}"
        standby, endpoint = _spawn_standby(root)
        try:
            report = _serve_burst(root, endpoint=endpoint)
        finally:
            standby.send_signal(signal.SIGTERM)
            standby.wait(timeout=30)
        replicated_s = min(replicated_s, report.elapsed_seconds)
        replicated_report = report

    # replication is invisible to the clients: the workload-arithmetic
    # counters agree across the two configurations (cache-sensitive
    # figures like sdw_hits legitimately vary with how the concurrent
    # sessions happened to interleave across the two worker machines;
    # each run's own merge consistency is already asserted by check())
    for key in ("calls", "returns", "ring_crossings", "faults"):
        assert (
            replicated_report.client_metrics[key]
            == plain_report.client_metrics[key]
        )
    overhead = replicated_s / plain_s - 1.0

    # -- Part B: failover latency, hot promotion vs cold replay ------
    workers.configure_durability(
        DurabilityConfig(
            dir=str(tmp_path / "failover"),
            slots=1,
            checkpoint_interval=10_000,
            fsync_every=8,
        )
    )
    try:
        primary = _WorkerState()
        slot_dir = primary.slot_dir
        for i in range(TAIL_CALLS):
            result = primary.execute(_job(i, count=FAILOVER_COUNT))
            assert "error" not in result, result
        primary.journal.sync()
        primary_arch = primary.engine.total.architectural()
    finally:
        workers.release_live_slots()
        workers.configure_durability(None)

    # the cold path first — promotion writes a snapshot that would
    # otherwise hand it a head start
    cold_s, cold = _best_of(REPS, lambda: recover_slot(slot_dir))
    assert cold.replayed == TAIL_CALLS
    assert cold.engine.total.architectural() == primary_arch

    frames = JournalTailer(os.path.join(slot_dir, JOURNAL_NAME)).poll()
    assert len(frames) == TAIL_CALLS
    snapshot_path = os.path.join(slot_dir, SNAPSHOT_NAME)

    hot_s = float("inf")
    hot = None
    for _ in range(REPS):
        # each attempt starts from the crash state: no promotion
        # snapshot on disk, a follower shipped to within SHIP_LAG
        # records (the warm-up is pre-crash work and stays untimed)
        for leftover in (snapshot_path, snapshot_path + ".prev"):
            if os.path.exists(leftover):
                os.remove(leftover)
        applier = ReplicaApplier()
        for frame in frames[: TAIL_CALLS - SHIP_LAG]:
            applier.apply(frame)
        started = time.perf_counter()
        report = applier.promote(slot_dir)
        hot = recover_slot(slot_dir)
        hot_s = min(hot_s, time.perf_counter() - started)
        assert report["replayed_tail"] == SHIP_LAG
    assert hot.replayed == 0
    assert hot.engine.calls == TAIL_CALLS
    assert hot.engine.total.architectural() == primary_arch

    speedup = cold_s / hot_s

    benchmark.extra_info["plain_serve_ms"] = round(plain_s * 1e3, 1)
    benchmark.extra_info["replicated_serve_ms"] = round(
        replicated_s * 1e3, 1
    )
    benchmark.extra_info["ship_overhead_frac"] = round(max(0.0, overhead), 4)
    benchmark.extra_info["cold_restore_ms"] = round(cold_s * 1e3, 2)
    benchmark.extra_info["hot_failover_ms"] = round(hot_s * 1e3, 2)
    benchmark.extra_info["failover_speedup_vs_cold"] = round(speedup, 2)
    benchmark.extra_info["tail_calls"] = TAIL_CALLS
    benchmark.extra_info["ship_lag"] = SHIP_LAG
    benchmark.extra_info["host_cores"] = os.cpu_count() or 1

    if STRICT and (os.cpu_count() or 1) >= OVERHEAD_MIN_CORES:
        assert overhead <= OVERHEAD_CEILING, (
            f"replication shipping overhead {overhead:.1%} exceeds "
            f"{OVERHEAD_CEILING:.0%}"
        )
    if STRICT:
        assert speedup >= SPEEDUP_FLOOR, (
            f"hot failover only {speedup:.1f}x faster than cold "
            f"restore (floor {SPEEDUP_FLOOR:.1f}x)"
        )

    journal_path = os.path.join(slot_dir, JOURNAL_NAME)
    benchmark(lambda: read_frames(journal_path, limit=8))
