"""Experiment F1 — the sharded fleet driver.

Two claims to pin:

* **Merge exactness** (asserted on every host): the merged fleet
  snapshot equals the integer sum of the per-shard snapshots, and the
  figures are independent of the backend — a sharded sweep is
  interchangeable with one serial run over the same shards.
* **Scaling** (host-dependent, gated): with at least four host cores
  the process backend completes four shards in well under four times a
  single shard's wall-clock.  Wall-clock assertions need both
  ``REPRO_BENCH_STRICT`` (default on) and enough cores; the scaling
  *figures* are recorded into ``benchmark.extra_info`` regardless, so
  the JSON output tracks the trajectory even on small runners.
"""

from __future__ import annotations

import functools
import os
import time

from repro.sim.fleet import call_loop_shard, run_fleet
from repro.sim.metrics import MetricsSnapshot

#: call/return pairs per shard — big enough that process start-up cost
#: does not dominate the scaling measurement
COUNT = 2000

SHARDS = 4

STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: four shards on >= 4 cores must beat this fraction of serial time
SCALING_TARGET = 0.5

WORKLOAD = functools.partial(call_loop_shard, count=COUNT)


def _fleet(backend, workers=SHARDS):
    return run_fleet(WORKLOAD, shards=SHARDS, workers=workers, backend=backend)


def test_f1_merge_is_exact(benchmark):
    """Merged metrics == sum of per-shard metrics, on every backend."""
    serial = _fleet("serial")
    assert serial.verify_merge()
    assert serial.merged == MetricsSnapshot.sum_of(
        shard.metrics for shard in serial.shards
    )
    process = _fleet("process")
    assert process.verify_merge()
    # Backend-independence: the simulated figures do not care where the
    # shards ran.
    assert process.merged == serial.merged
    assert process.payloads == serial.payloads

    result = benchmark(lambda: _fleet("serial"))
    benchmark.extra_info["shards"] = SHARDS
    benchmark.extra_info["merged_instructions"] = result.merged.instructions
    benchmark.extra_info["merged_cycles"] = result.merged.cycles
    benchmark.extra_info["merged_ring_crossings"] = (
        result.merged.ring_crossings
    )


def test_f1_process_scaling(benchmark):
    """Near-linear scaling of the process backend on >= 4 cores."""
    start = time.perf_counter()
    single = run_fleet(WORKLOAD, shards=1, backend="serial")
    single_seconds = time.perf_counter() - start

    fleet = _fleet("process")
    assert fleet.verify_merge()

    cores = os.cpu_count() or 1
    parallel_fraction = fleet.wall_seconds / (SHARDS * single_seconds)
    benchmark.extra_info["host_cores"] = cores
    benchmark.extra_info["backend"] = fleet.backend
    benchmark.extra_info["single_shard_seconds"] = round(single_seconds, 4)
    benchmark.extra_info["fleet_seconds"] = round(fleet.wall_seconds, 4)
    benchmark.extra_info["fraction_of_serial"] = round(parallel_fraction, 3)
    benchmark.extra_info["effective_speedup"] = round(
        1.0 / parallel_fraction, 2
    )

    if STRICT and cores >= SHARDS and fleet.backend == "process":
        assert parallel_fraction <= SCALING_TARGET, (
            f"{SHARDS} shards took {parallel_fraction:.0%} of serial time "
            f"on {cores} cores; expected <= {SCALING_TARGET:.0%}"
        )

    benchmark(lambda: run_fleet(WORKLOAD, shards=1, backend="serial"))


def test_f1_thread_backend_merges(benchmark):
    """The GIL makes threads a fan-out test, not a speed-up; the merge
    contract must hold all the same."""
    fleet = _fleet("thread", workers=2)
    assert fleet.verify_merge()
    assert fleet.merged.instructions == SHARDS * (
        fleet.shards[0].metrics.instructions
    )
    benchmark(lambda: run_fleet(WORKLOAD, shards=2, backend="thread"))
