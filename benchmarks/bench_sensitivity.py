"""Experiment S1 — cost-model sensitivity of the C1 result.

Sweeps the two free constants (hardware trap overhead, software
crossing-handler work) and verifies the paper's qualitative claim at
every point: software rings always cost more per crossing, and the
hardware's downward call stays trap-free regardless.
"""

from repro.analysis.sweeps import (
    crossover_handler_cycles,
    render_sweep,
    sweep_crossing_costs,
)


def test_s1_sweep(benchmark):
    points = benchmark.pedantic(
        sweep_crossing_costs, rounds=1, iterations=1
    )
    print()
    print(render_sweep(points))
    # hardware cost is independent of both knobs (no trap on the path)
    hardware_costs = {p.hardware_cycles for p in points}
    assert len(hardware_costs) == 1
    # software always costs more, at every point in the sweep
    assert all(p.ratio > 1 for p in points)
    # and the penalty grows with handler cost
    by_handler = sorted(
        (p for p in points if p.trap_overhead == 30),
        key=lambda p: p.handler_cycles,
    )
    ratios = [p.ratio for p in by_handler]
    assert ratios == sorted(ratios)


def test_s1_crossover_is_at_zero(benchmark):
    """Software rings match hardware only with a zero-cost handler and
    zero-cost trap — i.e. never, which is the paper's argument made
    quantitative."""
    crossover = benchmark.pedantic(
        crossover_handler_cycles, kwargs={"trap_overhead": 0}, rounds=1,
        iterations=1,
    )
    assert crossover == 0


def test_s1_with_real_trap_no_crossover(benchmark):
    """With any nonzero trap overhead there is no handler cost at which
    software rings catch up."""
    crossover = benchmark.pedantic(
        crossover_handler_cycles, kwargs={"trap_overhead": 30}, rounds=1,
        iterations=1,
    )
    assert crossover == -1
