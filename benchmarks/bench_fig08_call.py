"""Experiment F8 — Figure 8: the CALL instruction.

Benchmarks the complete CALL path on the live system — same-ring calls
and downward calls through gates — plus the exhaustive decision table,
and prints the figure.  The downward call executing in the same handful
of cycles as the same-ring call *is* the paper's contribution.
"""

from repro.analysis.decision_tables import call_decision_table
from repro.analysis.figures import render_figure8

from conftest import build_call_loop_machine


def test_fig8_decision_table(benchmark):
    rows = benchmark(call_decision_table)
    print()
    print(render_figure8())
    assert rows


def _cycles_per_pair(machine, process, count):
    result = machine.run(process, "caller$main", ring=4)
    assert result.halted
    return result.cycles / count


def test_fig8_same_ring_call_loop(benchmark):
    def run():
        machine, process = build_call_loop_machine(target_ring=4, count=16)
        return _cycles_per_pair(machine, process, 16)

    benchmark.extra_info["cycles_per_pair"] = benchmark(run)


def test_fig8_downward_call_loop(benchmark):
    def run():
        machine, process = build_call_loop_machine(target_ring=0, count=16)
        return _cycles_per_pair(machine, process, 16)

    benchmark.extra_info["cycles_per_pair"] = benchmark(run)


def test_fig8_downward_vs_same_ring_parity(benchmark):
    """The figure's performance story: the ring switch adds only the
    constant bookkeeping cycles, not a trap."""

    def run():
        same_m, same_p = build_call_loop_machine(target_ring=4, count=16)
        down_m, down_p = build_call_loop_machine(target_ring=0, count=16)
        return (
            _cycles_per_pair(same_m, same_p, 16),
            _cycles_per_pair(down_m, down_p, 16),
        )

    same, down = benchmark(run)
    assert down - same < 5
    benchmark.extra_info["same_ring"] = same
    benchmark.extra_info["downward"] = down


def test_fig8_gate_check_cost(benchmark):
    """Gate-word comparison adds nothing measurable: gated and gateless
    same-segment calls cost the same per pair."""

    def run():
        machine, process = build_call_loop_machine(target_ring=4, count=16)
        return _cycles_per_pair(machine, process, 16)

    benchmark(run)
