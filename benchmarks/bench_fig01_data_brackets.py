"""Experiment F1 — Figure 1: access indicators for a writable data segment.

Regenerates the figure's per-ring permission table and benchmarks the
validation path it describes: read and write checks against the example
segment's brackets, both as pure policy calls and on the live machine.
"""

import pytest

from repro.analysis.figures import FIGURE1_EXAMPLE, render_figure1
from repro.core.rings import check_read, check_write, permission_table
from repro.cpu.validate import validate_read, validate_write
from repro.formats.sdw import SDW

BRACKETS = FIGURE1_EXAMPLE["brackets"]
SDW_F1 = SDW(
    addr=0,
    bound=1024,
    r1=BRACKETS.r1,
    r2=BRACKETS.r2,
    r3=BRACKETS.r3,
    read=True,
    write=True,
    execute=False,
)


def test_fig1_table_reproduced(benchmark):
    """Rebuild the Figure 1 permission table (and print it once)."""
    table = benchmark(
        permission_table, BRACKETS, True, True, False
    )
    print()
    print(render_figure1())
    writes = [row["write"] for row in table]
    assert writes == [True] * 5 + [False] * 3
    benchmark.extra_info["write_bracket_top"] = BRACKETS.r1
    benchmark.extra_info["read_bracket_top"] = BRACKETS.r2


def test_fig1_policy_check_throughput(benchmark):
    """Raw speed of the pure read/write bracket checks."""

    def sweep():
        allowed = 0
        for ring in range(8):
            allowed += check_read(ring, BRACKETS, True)
            allowed += check_write(ring, BRACKETS, True)
        return allowed

    assert benchmark(sweep) == 12  # 7 reads + 5 writes permitted


def test_fig1_sdw_validation_throughput(benchmark):
    """The same checks as the hardware performs them against an SDW."""

    def sweep():
        faults = 0
        for ring in range(8):
            faults += validate_read(SDW_F1, ring, 0) is not None
            faults += validate_write(SDW_F1, ring, 0) is not None
        return faults

    assert benchmark(sweep) == 4  # 1 read refusal + 3 write refusals
