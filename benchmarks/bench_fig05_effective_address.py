"""Experiment F5 — Figure 5: effective-address formation.

Benchmarks the effective-address unit across the figure's dimensions:
direct, PR-relative, and indirect chains of growing depth, printing the
TPR.RING evolution the figure specifies.  Each extra indirection hop
costs exactly one validated read (one simulated cycle when SDWs are
cached), and the effective ring is the running max of every influence.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from helpers import BareMachine, ind_word  # noqa: E402

from repro.analysis.figures import render_figure5
from repro.cpu.address import form_effective_address
from repro.formats.instruction import Instruction


def _machine_with_chain(depth, ring_fields):
    """Segment 9 holds a chain of ``depth`` indirect words ending at
    word 100; hop i carries RING = ring_fields[i]."""
    bm = BareMachine()
    bm.add_code(8, [0] * 4, ring=4)
    words = [0] * 128
    for i in range(depth):
        chained = i + 1 < depth
        target = (9, i + 1) if chained else (9, 100)
        words[i] = ind_word(target[0], target[1], ring=ring_fields[i], chained=chained)
    # write bracket ends at 4 (the influence that matters) but reads are
    # open to every ring so raised effective rings can keep chasing
    bm.add_segment(9, words, r1=4, r2=7, r3=7, read=True, write=True, execute=False)
    bm.start(8, 0, ring=4)
    return bm


def _inst(depth):
    return Instruction(
        opcode=0o010, offset=0, indirect=depth > 0, prflag=True, prnum=1
    )


@pytest.mark.parametrize("depth", [0, 1, 2, 4, 8])
def test_fig5_indirection_depth(benchmark, depth):
    rings = [0] * max(depth, 1)
    bm = _machine_with_chain(depth, rings)
    bm.regs.pr(1).load(9, 0, 4)
    inst = _inst(depth)

    def form():
        return form_effective_address(bm.proc, inst)

    tpr = benchmark(form)
    expected_wordno = 100 if depth else 0
    assert tpr.wordno == expected_wordno
    benchmark.extra_info["depth"] = depth


def test_fig5_ring_evolution_printed(benchmark):
    """Reproduce the figure's ring evolution along a concrete chain."""
    rings = [2, 6, 3, 0]
    bm = _machine_with_chain(4, rings)
    bm.regs.pr(1).load(9, 0, 4)
    inst = _inst(4)

    tpr = benchmark(lambda: form_effective_address(bm.proc, inst))
    print()
    print(render_figure5())
    print()
    print(f"  concrete chain: cur=4, PR.RING=4, hops carry RING={rings},")
    print(f"  holder write-top R1=4  =>  TPR.RING = {tpr.ring}")
    assert tpr.ring == 6  # max(4, 2, 6, 3, 0, R1=4)
    benchmark.extra_info["final_ring"] = tpr.ring


def test_fig5_pr_relative_vs_direct(benchmark):
    """PR-relative addressing adds no memory traffic over direct."""
    bm = _machine_with_chain(0, [0])
    bm.regs.pr(1).load(9, 7, 4)
    direct = Instruction(opcode=0o010, offset=7)
    relative = Instruction(opcode=0o010, offset=0, prflag=True, prnum=1)

    def both():
        a = form_effective_address(bm.proc, direct)
        b = form_effective_address(bm.proc, relative)
        return a.wordno, b.wordno

    wordnos = benchmark(both)
    assert wordnos == (7, 7)
