"""Shared benchmark fixtures and workload builders.

Benchmarks serve two purposes at once: pytest-benchmark measures the
host-side throughput of the simulator, and each benchmark *prints and
records* the simulated-cycle figures that reproduce the paper's
artifact (stored in ``benchmark.extra_info`` so they land in the JSON
output too).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from repro.core.acl import AclEntry, RingBracketSpec
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


def build_call_loop_machine(
    hardware_rings: bool = True,
    target_ring: int = 0,
    count: int = 16,
    stack_rule: str = "dbr",
    sdw_cache_enabled: bool = True,
    paged: bool = False,
    fast_path_enabled: bool = True,
    block_tier_enabled: bool | None = None,
    jit_tier_enabled: bool | None = None,
    fast_gate: bool = False,
):
    """A machine whose ``caller$main`` performs ``count`` call/return
    pairs against a gated callee executing at ``target_ring``."""
    machine = Machine(
        hardware_rings=hardware_rings,
        services=False,
        stack_rule=stack_rule,
        sdw_cache_enabled=sdw_cache_enabled,
        paged=paged,
        fast_path_enabled=fast_path_enabled,
        block_tier_enabled=block_tier_enabled,
        jit_tier_enabled=jit_tier_enabled,
        fast_gate=fast_gate,
    )
    user = machine.add_user("bench")
    spec = (
        RingBracketSpec.procedure(4)
        if target_ring == 4
        else RingBracketSpec.procedure(target_ring, callable_from=5)
    )
    machine.store_program(
        ">bench>callee",
        """
        .seg    callee
        .gates  1
entry:: return  pr4|0
""",
        acl=[AclEntry("*", spec)],
    )
    machine.store_program(
        ">bench>caller",
        f"""
        .seg    caller
main::  lda     ={count}
loop:   eap4    back
        call    l_callee,*
back:   sba     =1
        tnz     loop
        halt
l_callee: .its  callee$entry
""",
        acl=USER_ACL,
    )
    process = machine.login(user)
    machine.initiate(process, ">bench>caller")
    machine.initiate(process, ">bench>callee")
    return machine, process


@pytest.fixture
def call_loop():
    return build_call_loop_machine
