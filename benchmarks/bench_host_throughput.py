"""Experiment H1 — host-side throughput of the interpreter fast path.

Unlike every other benchmark in this directory, the figure of interest
here is *host* instructions per second, not simulated cycles: the
validated-translation cache (PTLB) and the decoded-instruction cache
(`repro.cpu.access_cache`) elide Python-side SDW unpacking, bracket
validation, and instruction decode on the hot path, while charging the
identical simulated cycles.  This benchmark records the throughput with
the fast path on and off and the resulting speedup into
``benchmark.extra_info`` so the trajectory lands in the ``BENCH_*.json``
output, and asserts both the speedup target and cycle neutrality.
"""

from __future__ import annotations

import time

from conftest import build_call_loop_machine

#: call/return pairs per run — ~5 instructions each plus the loop body
COUNT = 300

#: timing repetitions; the best run is reported to shed scheduler noise
REPS = 5


def _throughput(fast_path_enabled):
    """Best-of-N host instructions/sec for the call-loop workload."""
    machine, process = build_call_loop_machine(
        target_ring=0, count=COUNT, fast_path_enabled=fast_path_enabled
    )
    best = 0.0
    result = None
    for _ in range(REPS):
        start = time.perf_counter()
        result = machine.run(process, "caller$main", ring=4)
        elapsed = time.perf_counter() - start
        assert result.halted
        best = max(best, result.instructions / elapsed)
    return best, result


def test_h1_fast_path_on(benchmark):
    machine, process = build_call_loop_machine(target_ring=0, count=COUNT)

    def run():
        return machine.run(process, "caller$main", ring=4)

    result = benchmark(run)
    assert result.halted
    stats = machine.processor.inst_cache.stats()
    benchmark.extra_info["instructions"] = result.instructions
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["icache_hits"] = stats["hits"]
    benchmark.extra_info["ptlb_hits"] = machine.processor.access_cache.stats()["hits"]


def test_h1_fast_path_off(benchmark):
    machine, process = build_call_loop_machine(
        target_ring=0, count=COUNT, fast_path_enabled=False
    )

    def run():
        return machine.run(process, "caller$main", ring=4)

    result = benchmark(run)
    assert result.halted
    benchmark.extra_info["instructions"] = result.instructions
    benchmark.extra_info["cycles"] = result.cycles


def test_h1_speedup_vs_disabled(benchmark):
    """The headline figure: >= 2x host throughput, cycle-for-cycle equal."""
    ips_on, result_on = _throughput(True)
    ips_off, result_off = _throughput(False)

    # Cycle neutrality: the fast path elides host work only.
    assert result_on.cycles == result_off.cycles
    assert result_on.instructions == result_off.instructions
    assert (result_on.a, result_on.ring, result_on.ring_crossings) == (
        result_off.a,
        result_off.ring,
        result_off.ring_crossings,
    )

    speedup = ips_on / ips_off
    benchmark.extra_info["instructions_per_sec_fast"] = round(ips_on)
    benchmark.extra_info["instructions_per_sec_slow"] = round(ips_off)
    benchmark.extra_info["speedup_vs_disabled"] = round(speedup, 2)
    assert speedup >= 2.0, f"fast path speedup {speedup:.2f}x below the 2x target"

    # Give pytest-benchmark a measured body (a single fast run) so this
    # test also produces a stable entry in the JSON output.
    machine, process = build_call_loop_machine(target_ring=0, count=COUNT)
    benchmark(lambda: machine.run(process, "caller$main", ring=4))
