"""Experiment H1 — host-side throughput of the interpreter fast paths.

Unlike every other benchmark in this directory, the figure of interest
here is *host* instructions per second, not simulated cycles: the
validated-translation cache (PTLB), the decoded-instruction cache
(``repro.cpu.access_cache``), the superblock execution tier
(``repro.cpu.blockcache``) and the trace-compile tier
(``repro.cpu.jit``) elide Python-side SDW unpacking, bracket
validation, instruction decode, and per-instruction dispatch on the hot
path, while charging the identical simulated cycles.  The benchmark
records the throughput of each tier and the resulting speedups into
``benchmark.extra_info`` so the trajectory lands in the ``BENCH_*.json``
output, and asserts the speedup targets and cycle neutrality.

Wall-clock assertions are inherently host-dependent, so they are gated:
set ``REPRO_BENCH_STRICT=0`` (loaded CI runners) to skip the speedup
thresholds while still asserting cycle neutrality, which must hold on
any host.  Timing itself is best-of-``REPS`` to shed scheduler noise.
"""

from __future__ import annotations

import os
import time

from conftest import build_call_loop_machine

#: call/return pairs per run — ~5 instructions each plus the loop body
COUNT = 300

#: larger run for the speedup ratios: the per-dispatch noise floor is
#: flat, so a longer loop separates the tiers far more stably
SPEEDUP_COUNT = 4000

#: timing repetitions; the best run is reported to shed scheduler noise
REPS = 5

#: host-dependent speedup assertions are skipped when this is "0"
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: targets: block tier vs. the PR 1 fast path, and vs. everything off
BLOCK_VS_FAST_TARGET = 1.5
BLOCK_VS_OFF_TARGET = 4.0
FAST_VS_OFF_TARGET = 2.0

#: trace-compile tier vs. the superblock tier (the ISSUE 6 headline)
JIT_VS_BLOCK_TARGET = 3.0


def _tier_throughputs(tiers):
    """Best-of-``REPS`` host instructions/sec per tier.

    One untimed warmup run per tier (cold caches, cold code), then the
    repetitions are *interleaved* across tiers so scheduler noise and
    frequency drift land on every tier alike instead of biasing
    whichever was measured first.  Returns ``(ips, result)`` per tier.
    """
    machines = {
        name: build_call_loop_machine(
            target_ring=0, count=SPEEDUP_COUNT, **knobs
        )
        for name, knobs in tiers.items()
    }
    best = dict.fromkeys(tiers, 0.0)
    results = {}
    for name, (machine, process) in machines.items():  # warmup
        results[name] = machine.run(process, "caller$main", ring=4)
        assert results[name].halted
    for _ in range(REPS):
        for name, (machine, process) in machines.items():
            start = time.perf_counter()
            result = machine.run(process, "caller$main", ring=4)
            elapsed = time.perf_counter() - start
            assert result.halted
            best[name] = max(best[name], result.instructions / elapsed)
            results[name] = result
    return {name: (best[name], results[name]) for name in tiers}


def _assert_neutral(result_a, result_b):
    """Identical simulated figures — required on every host."""
    assert result_a.cycles == result_b.cycles
    assert result_a.instructions == result_b.instructions
    assert (result_a.a, result_a.ring, result_a.ring_crossings) == (
        result_b.a,
        result_b.ring,
        result_b.ring_crossings,
    )
    assert (
        result_a.metrics.architectural() == result_b.metrics.architectural()
    )


def test_h1_block_tier_on(benchmark):
    machine, process = build_call_loop_machine(target_ring=0, count=COUNT)

    def run():
        return machine.run(process, "caller$main", ring=4)

    result = benchmark(run)
    assert result.halted
    proc = machine.processor
    benchmark.extra_info["instructions"] = result.instructions
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["icache_hits"] = proc.inst_cache.stats()["hits"]
    benchmark.extra_info["ptlb_hits"] = proc.access_cache.stats()["hits"]
    benchmark.extra_info["block_hits"] = proc.block_cache.stats()["hits"]
    benchmark.extra_info["block_instructions"] = proc.block_cache.stats()[
        "block_instructions"
    ]


def test_h1_fast_path_only(benchmark):
    machine, process = build_call_loop_machine(
        target_ring=0, count=COUNT, block_tier_enabled=False
    )

    def run():
        return machine.run(process, "caller$main", ring=4)

    result = benchmark(run)
    assert result.halted
    benchmark.extra_info["instructions"] = result.instructions
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["icache_hits"] = machine.processor.inst_cache.stats()[
        "hits"
    ]


def test_h1_fast_path_off(benchmark):
    machine, process = build_call_loop_machine(
        target_ring=0,
        count=COUNT,
        fast_path_enabled=False,
        block_tier_enabled=False,
    )

    def run():
        return machine.run(process, "caller$main", ring=4)

    result = benchmark(run)
    assert result.halted
    benchmark.extra_info["instructions"] = result.instructions
    benchmark.extra_info["cycles"] = result.cycles


def test_h1_speedup_vs_disabled(benchmark):
    """The headline figures: tier speedups, cycle-for-cycle equal.

    Neutrality is asserted unconditionally; the wall-clock thresholds
    only under ``REPRO_BENCH_STRICT`` (default on).
    """
    # Time the measured body first so this test contributes its entry
    # (and extra_info) to the JSON output even when a threshold trips.
    machine, process = build_call_loop_machine(target_ring=0, count=COUNT)
    benchmark(lambda: machine.run(process, "caller$main", ring=4))

    measured = _tier_throughputs(
        {
            "jit": {"jit_tier_enabled": True},
            "block": {},
            "fast": {"block_tier_enabled": False},
            "off": {"fast_path_enabled": False, "block_tier_enabled": False},
        }
    )
    ips_jit, result_jit = measured["jit"]
    ips_block, result_block = measured["block"]
    ips_fast, result_fast = measured["fast"]
    ips_off, result_off = measured["off"]

    # Cycle neutrality: the host tiers elide host work only.
    _assert_neutral(result_block, result_jit)
    _assert_neutral(result_block, result_fast)
    _assert_neutral(result_block, result_off)

    jit_vs_block = ips_jit / ips_block
    block_vs_fast = ips_block / ips_fast
    block_vs_off = ips_block / ips_off
    fast_vs_off = ips_fast / ips_off
    benchmark.extra_info["instructions_per_sec_jit"] = round(ips_jit)
    benchmark.extra_info["instructions_per_sec_block"] = round(ips_block)
    benchmark.extra_info["instructions_per_sec_fast"] = round(ips_fast)
    benchmark.extra_info["instructions_per_sec_slow"] = round(ips_off)
    benchmark.extra_info["jit_speedup_vs_block"] = round(jit_vs_block, 2)
    benchmark.extra_info["block_speedup_vs_fast"] = round(block_vs_fast, 2)
    benchmark.extra_info["block_speedup_vs_disabled"] = round(block_vs_off, 2)
    benchmark.extra_info["speedup_vs_disabled"] = round(fast_vs_off, 2)

    if STRICT:
        assert fast_vs_off >= FAST_VS_OFF_TARGET, (
            f"fast path speedup {fast_vs_off:.2f}x below the "
            f"{FAST_VS_OFF_TARGET}x target"
        )
        assert block_vs_fast >= BLOCK_VS_FAST_TARGET, (
            f"block tier speedup {block_vs_fast:.2f}x over the fast path, "
            f"below the {BLOCK_VS_FAST_TARGET}x target"
        )
        assert block_vs_off >= BLOCK_VS_OFF_TARGET, (
            f"block tier speedup {block_vs_off:.2f}x over the seed "
            f"interpreter, below the {BLOCK_VS_OFF_TARGET}x target"
        )
        assert jit_vs_block >= JIT_VS_BLOCK_TARGET, (
            f"trace tier speedup {jit_vs_block:.2f}x over the block "
            f"tier, below the {JIT_VS_BLOCK_TARGET}x target"
        )
