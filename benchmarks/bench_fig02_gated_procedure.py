"""Experiment F2 — Figure 2: a gated pure procedure segment.

Regenerates the figure and benchmarks the execute-bracket and gate
checks that govern it.
"""

from repro.analysis.figures import FIGURE2_EXAMPLE, render_figure2
from repro.core.gates import decide_call, gate_ok
from repro.core.rings import check_execute, permission_table

BRACKETS = FIGURE2_EXAMPLE["brackets"]


def test_fig2_table_reproduced(benchmark):
    table = benchmark(permission_table, BRACKETS, True, False, True)
    print()
    print(render_figure2())
    executes = [row["execute"] for row in table]
    gates = [row["gate"] for row in table]
    assert executes == [False] * 3 + [True] * 2 + [False] * 3
    assert gates == [False] * 5 + [True] * 2 + [False]
    benchmark.extra_info["execute_bracket"] = list(BRACKETS.execute_bracket)
    benchmark.extra_info["gate_extension"] = list(BRACKETS.gate_extension)


def test_fig2_execute_check_throughput(benchmark):
    def sweep():
        return sum(check_execute(ring, BRACKETS, True) for ring in range(8))

    assert benchmark(sweep) == 2  # rings 3 and 4


def test_fig2_gate_decision_throughput(benchmark):
    """Full CALL decisions against the gated example, every ring."""

    def sweep():
        outcomes = []
        for ring in range(8):
            outcomes.append(
                decide_call(ring, ring, BRACKETS, True, 0, 2, False).outcome.name
            )
        return outcomes

    outcomes = benchmark(sweep)
    # rings 5-6 enter through the gate extension (downward calls)
    assert outcomes[5] == outcomes[6] == "DOWNWARD"
    assert outcomes[7] == "FAULT_OUTSIDE_BRACKET"


def test_fig2_gate_list_check_throughput(benchmark):
    def sweep():
        hits = 0
        for wordno in range(64):
            hits += gate_ok(wordno, 2, same_segment=False)
        return hits

    assert benchmark(sweep) == 2
