"""Experiment H1 — what the hardening extensions cost per crossing.

Each hardening flag intercepts the ring-crossing machinery somewhere:
``auth_return_stack`` charges an ``auth_mac_cycles`` MAC per downward
CALL and per verified upward RETURN, ``ring_domains`` adds a table
lookup to operand validation, and ``nx_brackets`` adds a bracket-shape
check to execute validation.  The paper's pitch for hardware rings is
that protection must be cheap enough to leave on; the same standard is
applied to the extensions here: the identical gate-crossing workload
(``call_loop`` — ring-4 bursts into a ring-0 gate and back) is run
with each flag on alone, with all three on, and with all off, and the
simulated cycles per crossing pair are compared.

Simulated cycles are deterministic, so the claims are asserted
outright: no single flag may cost more than ``MAX_FLAG_OVERHEAD`` over
the unhardened machine, and the two pure-check flags (domains, NX)
must be architecturally *free* — their work rides the slow validation
path whose results the PTLB caches, so the cost model never sees them.
The measured overhead ratios are also gated against
``baseline_hardening.json`` (as ceilings) so drift fails CI.
"""

from __future__ import annotations

from repro.hardening import HARDENING_FLAGS, HardeningConfig
from repro.serve.catalog import build_program, install_image
from repro.sim.machine import Machine

#: crossing pairs per run: each count is one downward CALL into the
#: ring-0 gate plus one authenticated upward RETURN
COUNT = 32

#: ceiling on hardened-over-plain cycles for any single flag
MAX_FLAG_OVERHEAD = 1.15

#: flags whose checks ride the validation path and must cost nothing
FREE_FLAGS = ("ring_domains", "nx_brackets")


def _run(hardening: HardeningConfig):
    machine = Machine(services=False, hardening=hardening)
    process = machine.login(machine.add_user("bench"))
    entry = install_image(
        machine, process, build_program("call_loop", {"count": COUNT})
    )
    result = machine.run(process, entry, ring=4)
    # each count is one inward and one outward crossing
    assert result.halted and result.ring_crossings == 2 * COUNT
    return result.cycles


def test_hardening_overhead(benchmark):
    """Cycles per crossing, per flag: hardening must stay cheap."""
    plain = _run(HardeningConfig())
    cycles = {
        flag: _run(HardeningConfig.from_flags([flag]))
        for flag in HARDENING_FLAGS
    }
    cycles["all"] = _run(HardeningConfig.from_flags(HARDENING_FLAGS))

    overhead = {name: value / plain for name, value in cycles.items()}
    for flag in HARDENING_FLAGS:
        assert overhead[flag] <= MAX_FLAG_OVERHEAD, (
            f"{flag} costs {overhead[flag]:.3f}x the unhardened machine "
            f"on the same {COUNT} crossings (ceiling {MAX_FLAG_OVERHEAD}x)"
        )
    for flag in FREE_FLAGS:
        assert cycles[flag] == plain, (
            f"{flag} is a pure check but changed the cycle count: "
            f"{plain} -> {cycles[flag]}"
        )
    # the flags compose: all-on overhead is the sum of the parts
    assert cycles["all"] - plain == sum(
        cycles[flag] - plain for flag in HARDENING_FLAGS
    )

    benchmark.extra_info["crossings"] = COUNT
    benchmark.extra_info["plain_cycles_per_crossing"] = round(
        plain / COUNT, 2
    )
    for name in (*HARDENING_FLAGS, "all"):
        benchmark.extra_info[f"{name}_overhead_ratio"] = round(
            overhead[name], 4
        )

    benchmark(lambda: None)
