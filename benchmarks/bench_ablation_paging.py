"""Experiment A4 — ablation: transparent paging (paper p. 7).

"Paging, if appropriately implemented, need not affect access control."
The same cross-ring call workload runs unpaged and paged; architectural
results must be identical, and the cost difference must be exactly the
page-table-word fetches (one extra cycle per virtual reference).
"""

from conftest import build_call_loop_machine


def _run(paged):
    machine, process = build_call_loop_machine(
        target_ring=0, count=16, paged=paged
    )
    result = machine.run(process, "caller$main", ring=4)
    assert result.halted
    return result


def test_a4_unpaged(benchmark):
    benchmark.extra_info["cycles"] = benchmark(lambda: _run(False).cycles)


def test_a4_paged(benchmark):
    benchmark.extra_info["cycles"] = benchmark(lambda: _run(True).cycles)


def test_a4_paging_transparent_to_protection(benchmark):
    def run():
        return _run(False), _run(True)

    plain, paged = benchmark(run)
    # identical architectural behaviour
    assert (plain.a, plain.ring, plain.ring_crossings, plain.console) == (
        paged.a,
        paged.ring,
        paged.ring_crossings,
        paged.console,
    )
    # paging costs extra cycles (PTW fetches), protection costs nothing new
    assert paged.cycles > plain.cycles
    benchmark.extra_info["ptw_overhead_cycles"] = paged.cycles - plain.cycles
    benchmark.extra_info["overhead_ratio"] = paged.cycles / plain.cycles
