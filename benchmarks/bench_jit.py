"""Experiment J1 — fast-gate repeat calls against the 645 trap baseline.

The paper's economic argument is that a gate call into a protected
subsystem should cost little more than an ordinary procedure call *once
the hardware has seen it* — descriptor fetches and ring validation are
first-call costs, not per-call costs.  This benchmark pins the measured
form of that claim with two machines running the identical call loop:

* **fast-gate machine** — hardware rings, the trace-compile tier
  (``repro.cpu.jit``) and the fast-gate entry path both on: a repeat
  run of the same process skips re-attachment, so the SDW associative
  memory stays warm and the compiled traces survive, and the repeat
  call re-validates nothing.
* **baseline645 machine** — ``hardware_rings=False``: every ring
  crossing traps to ``repro.krnl.baseline645``'s software assist, which
  completes the crossing in (simulated) supervisor code.  This is the
  Honeywell 645 arrangement the paper's hardware proposal replaces.

Two kinds of figure come out:

* **Simulated cycles per gate call** (asserted on every host — the
  figures are architectural, hence deterministic): the fast-gate repeat
  call must undercut the 645 trap path by ``SIM_RATIO_FLOOR``, and the
  repeat call must be *cheaper than the first* by exactly the
  descriptor fetches the first call paid (``sdw_misses == 0``).
* **Host wall clock** (gated by ``REPRO_BENCH_STRICT`` like every
  wall-clock assertion in this directory): the trace tier should make
  the repeat run dramatically cheaper to *simulate* too, since the 645
  baseline burns host time interpreting its software assist.
"""

from __future__ import annotations

import os
import time

from conftest import build_call_loop_machine

#: call/return pairs per run (matches bench_host_throughput's COUNT)
COUNT = 300

#: warm runs before measuring: run 1 attaches + compiles the loop body,
#: runs 2-3 let the entry/exit stubs cross the hot threshold, so the
#: measured repeat run executes ~entirely inside compiled traces
WARM_RUNS = 3

#: timing repetitions; the best run is reported to shed scheduler noise
REPS = 5

#: host-dependent wall-clock assertions are skipped when this is "0"
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: simulated cycles per gate call, 645 trap baseline vs. fast-gate
#: repeat — measured ~28.5x; the floor leaves room for cost-model
#: tweaks without letting the trap path quietly become competitive
SIM_RATIO_FLOOR = 15.0

#: host time per run, 645 baseline vs. fast-gate repeat (measured ~85x
#: on a quiet host; the floor is deliberately loose for noisy CI)
HOST_RATIO_TARGET = 10.0


def _build_fast_gate():
    return build_call_loop_machine(
        target_ring=0, count=COUNT, jit_tier_enabled=True, fast_gate=True
    )


def _build_baseline645():
    return build_call_loop_machine(
        hardware_rings=False, target_ring=0, count=COUNT
    )


def test_j1_repeat_call_vs_baseline645(benchmark):
    """Warm repeat gate calls vs. the 645 software-ring trap machine."""
    machine, process = _build_fast_gate()
    first = machine.run(process, "caller$main", ring=4)
    assert first.halted
    for _ in range(WARM_RUNS - 1):
        machine.run(process, "caller$main", ring=4)

    b645, p645 = _build_baseline645()
    base = b645.run(p645, "caller$main", ring=4)  # warmup (host caches)
    assert base.halted

    repeat = machine.run(process, "caller$main", ring=4)
    assert repeat.halted
    assert (repeat.a, repeat.ring) == (first.a, first.ring)
    assert repeat.instructions == first.instructions

    # The repeat call pays zero descriptor fetches: the fast-gate entry
    # path kept the SDW associative memory warm across runs, so the
    # repeat run is cheaper than the first by exactly those fetches.
    assert repeat.metrics.sdw_misses == 0
    assert repeat.cycles < first.cycles

    # Architectural, therefore deterministic: assert on every host.
    repeat_cpc = repeat.cycles / COUNT
    base_cpc = base.cycles / COUNT
    sim_ratio = base_cpc / repeat_cpc
    assert sim_ratio >= SIM_RATIO_FLOOR, (
        f"645 trap path costs only {sim_ratio:.1f}x a fast-gate repeat "
        f"call ({base_cpc:.1f} vs {repeat_cpc:.1f} cycles/call); "
        f"expected >= {SIM_RATIO_FLOOR}x"
    )

    # Host wall clock, interleaved best-of-REPS (same reasoning as
    # bench_host_throughput: noise should land on both machines alike).
    best_fast = best_base = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        r = machine.run(process, "caller$main", ring=4)
        best_fast = min(best_fast, time.perf_counter() - start)
        assert r.halted
        start = time.perf_counter()
        s = b645.run(p645, "caller$main", ring=4)
        best_base = min(best_base, time.perf_counter() - start)
        assert s.halted
    host_ratio = best_base / best_fast

    benchmark.extra_info["gate_calls_per_run"] = COUNT
    benchmark.extra_info["repeat_cycles_per_call"] = round(repeat_cpc, 2)
    benchmark.extra_info["baseline645_cycles_per_call"] = round(base_cpc, 2)
    benchmark.extra_info["sim_cycle_ratio_vs_baseline645"] = round(
        sim_ratio, 2
    )
    benchmark.extra_info["first_call_extra_cycles"] = (
        first.cycles - repeat.cycles
    )
    benchmark.extra_info["host_time_ratio_vs_baseline645"] = round(
        host_ratio, 1
    )

    if STRICT:
        assert host_ratio >= HOST_RATIO_TARGET, (
            f"fast-gate repeat run only {host_ratio:.1f}x faster (host "
            f"time) than the 645 baseline; expected >= "
            f"{HOST_RATIO_TARGET}x"
        )

    result = benchmark(lambda: machine.run(process, "caller$main", ring=4))
    assert result.halted


def test_j1_traces_survive_fast_gate_repeats(benchmark):
    """Repeat calls re-enter surviving traces; nothing recompiles."""
    machine, process = _build_fast_gate()
    for _ in range(WARM_RUNS):
        machine.run(process, "caller$main", ring=4)

    jit = machine.processor.jit_cache
    reference = None
    for _ in range(3):
        result = machine.run(process, "caller$main", ring=4)
        assert result.halted
        stats = jit.stats()  # per-run: machine.run resets the counters
        # steady state: no compilation, no misses, no invalidations —
        # the run enters the surviving traces and stays there
        assert stats["compiled"] == 0
        assert stats["misses"] == 0
        assert stats["invalidations"] == 0
        assert stats["hits"] >= 1
        # ~the whole run retires inside compiled traces
        assert stats["jit_instructions"] >= 0.9 * result.instructions
        figures = (
            result.a,
            result.ring,
            result.cycles,
            result.instructions,
            result.metrics.architectural(),
        )
        if reference is None:
            reference = figures
        else:
            assert figures == reference  # repeat calls repeat exactly

    benchmark.extra_info["trace_entries"] = jit.stats()["entries"]
    benchmark.extra_info["trace_coverage"] = round(
        jit.stats()["jit_instructions"] / reference[3], 3
    )
    result = benchmark(lambda: machine.run(process, "caller$main", ring=4))
    assert result.halted
