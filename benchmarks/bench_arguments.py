"""Experiment C2 — argument passing and automatic validation.

Reproduces the paper's argument story (pp. 32-33):

* the caller builds an argument list of indirect words and passes its
  address in PRa (PR1 by convention);
* the called (inner-ring) procedure references arguments through PRa —
  every reference is automatically validated at the caller's ring;
* a hostile caller who forges a low RING field in an argument pointer
  gains nothing: the stack's write-bracket top re-raises the effective
  ring, so the callee "cannot be tricked into reading or writing an
  argument that the caller could not also read or write";
* along a chain of downward calls the originating ring keeps riding the
  pointers (the footnote on p. 33).
"""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]
GATE_ACL = [AclEntry("*", RingBracketSpec.procedure(0, callable_from=5))]
MID_ACL = [AclEntry("*", RingBracketSpec.procedure(2, callable_from=5))]

CALLER = """
        .seg    caller
main::  lda     =77
        sta     pr6|2          ; the argument value, in my stack
        eap2    pr6|2          ; PR2 := its address (ring 4)
        spr2    pr6|1          ; argument list word 0, at stack word 1
        eap1    pr6|1          ; PR1 := argument list base (PRa)
        eap4    back
        call    l_gate,*
back:   halt
l_gate: .its    gate$entry
"""

GATE = """
        .seg    gate
        .gates  1
entry:: lda     pr1|0,*        ; argument 0, through the argument list
        return  pr4|0
"""

EVIL_CALLER = """
        .seg    caller
main::  lda     forged         ; the forged pointer word (RING = 0)
        sta     pr6|1          ; plant it as argument list word 0
        eap1    pr6|1
        eap4    back
        call    l_gate,*
back:   halt
forged: .its    secret, 0      ; a pointer the caller may not follow
l_gate: .its    gate$entry
"""

CHAIN_MIDDLE = """
        .seg    middle
        .gates  1
entry:: eap6    pr0|0          ; my ring-2 stack
        spr4    pr6|1
        eap4    back           ; pass PR1 (the argument list) along
        call    l_inner,*
back:   eap4    pr6|1,*
        return  pr4|0
l_inner: .its   gate$entry
"""


def _system(caller_src, extra=()):
    machine = Machine(services=False)
    user = machine.add_user("u")
    machine.store_program(">b>caller", caller_src, acl=USER_ACL)
    machine.store_program(">b>gate", GATE, acl=GATE_ACL)
    for path, src, acl in extra:
        if src is None:
            machine.store_data(path, [123456], acl=acl)
        else:
            machine.store_program(path, src, acl=acl)
    process = machine.login(user)
    machine.initiate(process, ">b>caller")
    return machine, process


def test_c2_upward_argument_reference(benchmark):
    """The ring-0 gate reads the ring-4 caller's argument, validated at
    ring 4 automatically via PRa.RING."""

    def run():
        machine, process = _system(CALLER)
        result = machine.run(process, "caller$main", ring=4)
        assert result.halted
        return result.a

    assert benchmark(run) == 77


def test_c2_forged_ring_field_is_harmless(benchmark):
    """A forged RING=0 argument pointer cannot widen the callee's view:
    the stack's write-bracket top re-raises the effective ring."""
    extra = [(">b>secret", None, [AclEntry("*", RingBracketSpec.data(0))])]

    def run():
        machine, process = _system(EVIL_CALLER, extra)
        machine.initiate(process, ">b>secret")
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "caller$main", ring=4)
        return excinfo.value.code

    assert benchmark(run) is FaultCode.ACV_READ_BRACKET


def test_c2_chained_downward_calls(benchmark):
    """ring 4 -> ring 2 -> ring 0: the argument's originating ring rides
    along the chain; the innermost reference still validates at 4."""
    chained = CALLER.replace("gate$entry", "middle$entry")

    def run():
        machine, process = _system(
            chained, [(">b>middle", CHAIN_MIDDLE, MID_ACL)]
        )
        result = machine.run(process, "caller$main", ring=4)
        assert result.ring == 4
        return result.a

    assert benchmark(run) == 77


def test_c2_argument_reference_cost(benchmark):
    """Cycles for the whole validated cross-ring argument fetch."""

    def run():
        machine, process = _system(CALLER)
        result = machine.run(process, "caller$main", ring=4)
        return result.cycles

    benchmark.extra_info["cycles"] = benchmark(run)
