"""Experiment F4 — Figure 4: instruction fetch validation.

Benchmarks the live fetch path (SDW lookup, execute-bracket check,
bound check, word read, decode) via straight-line NOP execution, and
the exhaustive fetch decision table.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from helpers import BareMachine, asm_inst, halt_word  # noqa: E402

from repro.analysis.decision_tables import fetch_decision_table
from repro.analysis.figures import render_figure4
from repro.cpu.isa import Op


def _straightline_machine(n=200, sdw_cache_enabled=True):
    from repro.cpu.sdwcache import SDWCache

    bm = BareMachine(sdw_cache=SDWCache(enabled=sdw_cache_enabled))
    bm.add_code(8, [asm_inst(Op.NOP)] * n + [halt_word()], ring=4)
    return bm


def test_fig4_decision_table(benchmark):
    rows = benchmark(fetch_decision_table)
    print()
    print(render_figure4())
    assert len(rows) == 120 * 2 * 8


def test_fig4_fetch_throughput(benchmark):
    """Instructions per second through the full Figure 4 path."""

    def run():
        bm = _straightline_machine()
        bm.start(8, 0, ring=4)
        return bm.run()

    instructions = benchmark(run)
    assert instructions == 201
    benchmark.extra_info["instructions"] = instructions


def test_fig4_fetch_cycle_cost(benchmark):
    """Simulated cycles per straight-line instruction (the paper's
    'very small additional costs' claim: validation adds no memory
    traffic when the SDW is cached)."""

    def run():
        bm = _straightline_machine()
        bm.start(8, 0, ring=4)
        bm.run()
        return bm.proc.cycles / bm.proc.stats.instructions

    per_inst = benchmark(run)
    assert per_inst < 3.0
    benchmark.extra_info["cycles_per_instruction"] = per_inst
