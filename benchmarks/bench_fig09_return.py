"""Experiment F9 — Figure 9: the RETURN instruction.

Benchmarks upward returns (including the sweep raising every PRn.RING)
against same-ring returns, plus the exhaustive decision table.
"""

from repro.analysis.decision_tables import return_decision_table
from repro.analysis.figures import render_figure9

from conftest import build_call_loop_machine


def test_fig9_decision_table(benchmark):
    rows = benchmark(return_decision_table)
    print()
    print(render_figure9())
    assert rows


def test_fig9_upward_return_loop(benchmark):
    """Each loop iteration performs one upward return (ring 0 -> 4)."""

    def run():
        machine, process = build_call_loop_machine(target_ring=0, count=16)
        result = machine.run(process, "caller$main", ring=4)
        assert result.ring_crossings == 32  # 16 down + 16 up
        return result.cycles

    benchmark.extra_info["cycles"] = benchmark(run)


def test_fig9_pr_raising_is_cheap(benchmark):
    """The all-PRs ring sweep is register work, not memory work: the
    upward return adds only the constant crossing cycles."""

    def run():
        same_m, same_p = build_call_loop_machine(target_ring=4, count=16)
        same = same_m.run(same_p, "caller$main", ring=4).cycles
        down_m, down_p = build_call_loop_machine(target_ring=0, count=16)
        down = down_m.run(down_p, "caller$main", ring=4).cycles
        return (down - same) / 16

    extra_per_pair = benchmark(run)
    assert extra_per_pair < 5
    benchmark.extra_info["extra_cycles_per_crossing_pair"] = extra_per_pair


def test_fig9_return_ring_guarantee(benchmark):
    """Replaying the whole loop, the machine always lands back in the
    caller's ring — never lower (paper p. 34)."""

    def run():
        machine, process = build_call_loop_machine(target_ring=0, count=8)
        result = machine.run(process, "caller$main", ring=4)
        return result.ring

    assert benchmark(run) == 4
