"""Experiment A1 — ablation: stack segment selection rule.

The paper's body text selects the new stack by ``segno = new ring``;
the footnote on p. 30 refines it: same-ring calls keep the current
stack pointer's segment (supporting nonstandard stacks) and cross-ring
calls use ``DBR.STACK + ring`` (relocatable stacks, forked stacks,
preserved stack history).  Both rules are implemented; this benchmark
shows they cost the same and behave identically in the default layout,
and that only the DBR rule supports relocated stacks.
"""

from conftest import build_call_loop_machine


def _cycles(stack_rule):
    machine, process = build_call_loop_machine(
        target_ring=0, count=16, stack_rule=stack_rule
    )
    result = machine.run(process, "caller$main", ring=4)
    assert result.halted
    return result.cycles


def test_a1_simple_rule(benchmark):
    benchmark.extra_info["cycles"] = benchmark(lambda: _cycles("simple"))


def test_a1_dbr_rule(benchmark):
    benchmark.extra_info["cycles"] = benchmark(lambda: _cycles("dbr"))


def test_a1_rules_agree_in_default_layout(benchmark):
    """With DBR.STACK = 0 the refined rule degenerates to the simple
    one — identical cycle counts, identical results."""

    def run():
        return _cycles("simple"), _cycles("dbr")

    simple, dbr = benchmark(run)
    assert simple == dbr


def test_a1_only_dbr_rule_supports_relocated_stacks(benchmark):
    """Moving the stacks to segment numbers 16-23 works under the DBR
    rule (the footnote's flexibility argument) and is impossible to
    express under the simple rule."""
    from repro.core.acl import AclEntry, RingBracketSpec
    from repro.sim.machine import Machine

    def run():
        machine = Machine(services=False, stack_rule="dbr")
        user = machine.add_user("u")
        machine.store_program(
            ">b>callee",
            """
        .seg    callee
        .gates  1
entry:: sta     pr0|5          ; prove the relocated ring-0 stack works
        return  pr4|0
""",
            acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=5))],
        )
        machine.store_program(
            ">b>caller",
            """
        .seg    caller
main::  lda     =9
        eap4    back
        call    l_callee,*
back:   halt
l_callee: .its  callee$entry
""",
            acl=[AclEntry("*", RingBracketSpec.procedure(4))],
        )
        process = machine.login(user, stack_base_segno=16)
        machine.initiate(process, ">b>caller")
        result = machine.run(process, "caller$main", ring=4)
        stack0 = process.dseg.get(16)  # relocated ring-0 stack
        return machine.memory.peek_block(stack0.addr + 5, 1)[0], result.ring

    value, ring = benchmark(run)
    assert value == 9 and ring == 4
