"""Experiment A3 — ablation: the gate-all-entries rule.

The paper makes *every* inter-segment CALL respect the gate list, even
same-ring, buying accidental-entry detection at the price that "if any
externally defined entry point in a procedure segment is a gate for a
higher numbered ring, then all are" (p. 29).  The promised escape hatch
is using a plain transfer for same-ring control flow.  This ablation
measures both paths and demonstrates the consequence of the rule.
"""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


def _machine(caller_src, callee_gates):
    machine = Machine(services=False)
    user = machine.add_user("u")
    machine.store_program(
        ">b>callee",
        f"""
        .seg    callee
        .gates  {callee_gates}
entry:: tra     back_out
inner:: tra     back_out       ; a second external entry
back_out: return pr4|0
""",
        acl=USER_ACL,
    )
    machine.store_program(">b>caller", caller_src, acl=USER_ACL)
    process = machine.login(user)
    machine.initiate(process, ">b>caller")
    machine.initiate(process, ">b>callee")
    return machine, process


CALL_LOOP = """
        .seg    caller
main::  lda     =16
loop:   eap4    back
        call    l_entry,*
back:   sba     =1
        tnz     loop
        halt
l_entry: .its   callee$ENTRY
"""

TRA_THERE_AND_BACK = """
        .seg    caller
main::  lda     =16
loop:   tra     l_inner,*      ; plain transfer: gate list bypassed
back::  sba     =1
        tnz     loop
        halt
l_inner: .its   callee$inner
"""


def test_a3_gated_same_ring_call(benchmark):
    def run():
        machine, process = _machine(
            CALL_LOOP.replace("ENTRY", "entry"), callee_gates=2
        )
        result = machine.run(process, "caller$main", ring=4)
        assert result.halted
        return result.cycles

    benchmark.extra_info["cycles"] = benchmark(run)


def test_a3_call_to_non_gate_entry_refused(benchmark):
    """With only word 0 gated, CALLing the second external entry faults:
    the all-or-nothing consequence of the compressed gate list."""

    def run():
        machine, process = _machine(
            CALL_LOOP.replace("ENTRY", "inner"), callee_gates=1
        )
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "caller$main", ring=4)
        return excinfo.value.code

    assert benchmark(run) is FaultCode.ACV_NOT_GATE


def test_a3_plain_transfer_bypasses_gate_list(benchmark):
    """The paper's escape hatch: same-ring TRA ignores gates."""

    def run():
        machine = Machine(services=False)
        user = machine.add_user("u")
        machine.store_program(
            ">b>callee",
            """
        .seg    callee
        .gates  1
entry:: tra     out
inner:: tra     out
out:    tra     l_back,*
l_back: .its    caller$back
""",
            acl=USER_ACL,
        )
        machine.store_program(">b>caller", TRA_THERE_AND_BACK, acl=USER_ACL)
        process = machine.login(user)
        machine.initiate(process, ">b>caller")
        machine.initiate(process, ">b>callee")
        result = machine.run(process, "caller$main", ring=4)
        assert result.halted
        return result.cycles

    benchmark.extra_info["cycles"] = benchmark(run)
