"""Experiment C1 — the crossing-cost table (the paper's central claim).

Prints and records the full comparison: marginal simulated cycles per
call/return pair, same-ring vs downward, on the hardware-rings machine
vs the Honeywell-645 software-rings baseline.  The expected shape:

* same-ring cost identical on both machines;
* hardware downward cost within a few cycles of same-ring;
* software downward cost dominated by two traps plus handler work —
  an order of magnitude or more.
"""

from repro.analysis.report import (
    crossing_cost_experiment,
    crossing_cost_table,
    measure_cycles_per_call,
)
from repro.core.acl import RingBracketSpec


def test_c1_full_table(benchmark):
    rows = benchmark(crossing_cost_experiment)
    print()
    print(crossing_cost_table())
    by_name = {r.scenario: r for r in rows}
    same = by_name["same-ring call+return"]
    down = by_name["downward call+upward return"]
    assert same.hardware_cycles == same.software_cycles
    assert down.hardware_cycles <= same.hardware_cycles + 5
    assert down.ratio > 5
    benchmark.extra_info["hardware_downward"] = down.hardware_cycles
    benchmark.extra_info["software_downward"] = down.software_cycles
    benchmark.extra_info["ratio"] = down.ratio


def test_c1_hardware_downward(benchmark):
    spec = RingBracketSpec.procedure(0, callable_from=5)

    def run():
        return measure_cycles_per_call(True, spec, "tzero", n_small=4, n_large=20)

    benchmark.extra_info["cycles_per_pair"] = benchmark(run)


def test_c1_software_downward(benchmark):
    spec = RingBracketSpec.procedure(0, callable_from=5)

    def run():
        return measure_cycles_per_call(False, spec, "tzero", n_small=4, n_large=20)

    benchmark.extra_info["cycles_per_pair"] = benchmark(run)
