"""Experiment F7 — Figure 7: non-referencing instructions.

Benchmarks the two halves of the figure: EAP-type pointer loads (no
validation at all) and plain transfers (ring-change refusal plus the
fetch advance check), plus the exhaustive transfer decision table.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from helpers import BareMachine, asm_inst, halt_word  # noqa: E402

from repro.analysis.decision_tables import transfer_decision_table
from repro.analysis.figures import render_figure7
from repro.cpu.isa import Op


def test_fig7_decision_table(benchmark):
    rows = benchmark(transfer_decision_table)
    print()
    print(render_figure7())
    refused = sum(
        1 for r in rows if r["eff_ring"] != r["cur_ring"] and r["allowed"]
    )
    assert refused == 0


def test_fig7_eap_loop(benchmark):
    """EAP throughput: one instruction, zero operand memory traffic."""

    def run():
        bm = BareMachine()
        words = [asm_inst(Op.LDA, offset=50, immediate=True)]
        words += [
            asm_inst(Op.EAP2, offset=3),
            asm_inst(Op.SBA, offset=1, immediate=True),
            asm_inst(Op.TNZ, offset=1),
            halt_word(),
        ]
        bm.add_code(8, words, ring=4)
        bm.start(8, 0, ring=4)
        bm.run()
        return bm.proc.cycles

    benchmark.extra_info["cycles"] = benchmark(run)


def test_fig7_transfer_loop(benchmark):
    """Tight TRA loop: fetch + advance check per iteration."""

    def run():
        bm = BareMachine()
        words = [
            asm_inst(Op.LDA, offset=50, immediate=True),
            asm_inst(Op.SBA, offset=1, immediate=True),
            asm_inst(Op.TZE, offset=4),
            asm_inst(Op.TRA, offset=1),
            halt_word(),
        ]
        bm.add_code(8, words, ring=4)
        bm.start(8, 0, ring=4)
        bm.run()
        return bm.proc.stats.instructions

    benchmark(run)


def test_fig7_eap_cheaper_than_load(benchmark):
    """An EAP costs less than a memory load: no operand reference."""

    def run():
        results = {}
        for key, op_word in (
            ("eap", asm_inst(Op.EAP2, offset=3)),
            ("load", asm_inst(Op.LDQ, offset=3)),
        ):
            bm = BareMachine()
            bm.add_code(8, [op_word] * 50 + [halt_word()], ring=4, write=False)
            # make the code segment readable so LDQ of word 3 is legal
            bm.start(8, 0, ring=4)
            bm.run()
            results[key] = bm.proc.cycles
        return results

    results = benchmark(run)
    assert results["eap"] < results["load"]
    benchmark.extra_info.update(results)
