"""Experiment F6 — Figure 6: operand read/write validation.

Benchmarks the live read and write paths (LDA/STA loops through a
pointer register) and the pure decision table.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from helpers import BareMachine, asm_inst, halt_word  # noqa: E402

from repro.analysis.decision_tables import read_write_decision_table
from repro.analysis.figures import render_figure6
from repro.cpu.isa import Op


def _loop_machine(op, count=100):
    """A program performing ``count`` operand references via PR1."""
    bm = BareMachine()
    words = [
        asm_inst(Op.LDA, offset=count, immediate=True),
        # loop: the operand reference, then count down
        asm_inst(op, offset=0, pr=1),
        asm_inst(Op.SBA, offset=1, immediate=True) if op is not Op.LDA
        else asm_inst(Op.SBA, offset=1, immediate=True),
        asm_inst(Op.TNZ, offset=1),
        halt_word(),
    ]
    # LDA as the measured op would clobber the counter; use Q loads
    bm.add_code(8, words, ring=4)
    bm.add_data(9, [0] * 8, ring=4)
    bm.start(8, 0, ring=4)
    bm.regs.pr(1).load(9, 0, 4)
    return bm


def test_fig6_decision_table(benchmark):
    rows = benchmark(read_write_decision_table)
    print()
    print(render_figure6())
    assert len(rows) == 120 * 4 * 8


def test_fig6_read_loop(benchmark):
    def run():
        bm = _loop_machine(Op.LDQ)
        bm.run()
        return bm.proc.cycles

    cycles = benchmark(run)
    benchmark.extra_info["cycles"] = cycles


def test_fig6_write_loop(benchmark):
    def run():
        bm = _loop_machine(Op.STQ)
        bm.run()
        return bm.proc.cycles

    cycles = benchmark(run)
    benchmark.extra_info["cycles"] = cycles


def test_fig6_read_write_cost_parity(benchmark):
    """Read and write validation cost the same — both are one bracket
    comparison plus the operand transfer."""

    def run():
        read = _loop_machine(Op.LDQ)
        read.run()
        write = _loop_machine(Op.STQ)
        write.run()
        return read.proc.cycles, write.proc.cycles

    read_cycles, write_cycles = benchmark(run)
    assert read_cycles == write_cycles
