"""Experiment F3 — Figure 3: storage formats and registers.

Benchmarks bit-exact pack/unpack of every format the figure defines and
prints the layout reproduction.  Correct round-tripping is asserted on
every iteration, so this doubles as a stress test of the encoding layer.
"""

from repro.analysis.figures import render_figure3
from repro.formats.indirect import IndirectWord
from repro.formats.instruction import Instruction
from repro.formats.pointerfmt import PackedPointer
from repro.formats.sdw import SDW

SAMPLE_SDWS = [
    SDW(addr=a, bound=b, r1=1, r2=3, r3=5, read=True, write=w, execute=True, gate=g)
    for a, b, w, g in [(0o1000, 64, False, 3), (0o4000, 1024, True, 0), (0, 0, False, 1)]
]

SAMPLE_INSTRUCTIONS = [
    Instruction(opcode=op, offset=off, indirect=i, prflag=p, prnum=n, tag=t)
    for op, off, i, p, n, t in [
        (0o10, 5, False, False, 0, 0),
        (0o60, 0o777, True, True, 3, 0),
        (0o20, 0o123456, False, True, 7, 2),
    ]
]

SAMPLE_POINTERS = [
    IndirectWord(segno=s, wordno=w, ring=r, indirect=i)
    for s, w, r, i in [(9, 0, 0, False), (0o777, 0o654321, 5, True), (0, 1, 7, False)]
]


def test_fig3_layouts_reproduced(benchmark):
    text = benchmark(render_figure3)
    print()
    print(text)
    assert "SDW.word0" in text


def test_fig3_sdw_roundtrip(benchmark):
    def roundtrip():
        for sdw in SAMPLE_SDWS:
            assert SDW.unpack(*sdw.pack()) == sdw

    benchmark(roundtrip)


def test_fig3_instruction_roundtrip(benchmark):
    def roundtrip():
        for inst in SAMPLE_INSTRUCTIONS:
            assert Instruction.unpack(inst.pack()) == inst

    benchmark(roundtrip)


def test_fig3_indirect_roundtrip(benchmark):
    def roundtrip():
        for ind in SAMPLE_POINTERS:
            assert IndirectWord.unpack(ind.pack()) == ind

    benchmark(roundtrip)


def test_fig3_pointer_indirect_equivalence(benchmark):
    """PRs and indirect words share one format (paper p. 24)."""

    def check():
        for ind in SAMPLE_POINTERS:
            ptr = PackedPointer.unpack(ind.pack())
            assert (ptr.segno, ptr.wordno, ptr.ring) == (
                ind.segno,
                ind.wordno,
                ind.ring,
            )

    benchmark(check)
