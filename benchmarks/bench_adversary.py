"""Experiment A1 — live hardware-vs-software A/B under adversarial load.

Two gateways serve the identical catalog, one per machine profile:
``ringed`` (the paper's hardware ring checks) and ``baseline645`` (the
GE 645 software-ring assist the paper was written against, where every
legal cross-ring CALL/RETURN pays a supervisor-sized cycle surcharge).
Both are driven with the same mixed workload:

* a **legal phase** — ``call_loop`` bursts crossing from ring 4 into a
  ring-0 gate — whose per-call simulated cycles give the crossing-cost
  A/B.  Simulated cycles are deterministic, so the claim is asserted
  outright: the hardware profile completes the same calls at least
  ``MIN_CYCLES_RATIO``x cheaper (and the measured ratio is also gated
  against ``baseline_adversary.json`` so drift fails CI);
* an **adversarial phase** — concurrent sessions calling an ``attack``
  catalog program from the ring-violation corpus — whose only legal
  outcome is a ``machine_fault`` carrying the oracle's code.  The
  fault rate must be 100% on *both* profiles: turning the hardware
  checks off may slow the machine down, it must never let an attack
  through.

The security claim of the paper in one benchmark: the rings cost
little when implemented in hardware, and cost no protection when they
are not.
"""

from __future__ import annotations

import asyncio

from repro.serve.gateway import GatewayConfig, RingGateway
from repro.serve.loadgen import run_load

WORKERS = 2

#: legal phase: sessions x calls of `count` call/return pairs into ring 0
LEGAL_SESSIONS = 8
LEGAL_CALLS = 4
COUNT = 16

#: adversarial phase: concurrent attackers, one corpus family each
ATTACKS = (
    ("nongate_call", "ACV_NOT_GATE"),
    ("gate_skip", "ACV_NOT_GATE"),
    ("launder_call", "ACV_RING_RAISED"),
    ("write_bracket", "ACV_WRITE_BRACKET"),
)
ATTACK_SESSIONS = 4
ATTACK_CALLS = 3

#: the deterministic floor: software rings must make the same legal
#: crossing workload at least this many times more expensive
MIN_CYCLES_RATIO = 2.0


async def _drive(profile: str):
    gateway = RingGateway(
        GatewayConfig(
            port=0,
            workers=WORKERS,
            backend="thread",
            call_timeout=60.0,
            drain_timeout=60.0,
            machine_profile=profile,
        )
    )
    await gateway.start()
    try:
        legal = await run_load(
            "127.0.0.1",
            gateway.port,
            sessions=LEGAL_SESSIONS,
            calls=LEGAL_CALLS,
            program="call_loop",
            args={"count": COUNT, "target_ring": 0},
            user_prefix=f"ab_{profile}",
            expect_profile=profile,
        )
        attacks = []
        for family, code in ATTACKS:
            attacks.append(
                await run_load(
                    "127.0.0.1",
                    gateway.port,
                    sessions=ATTACK_SESSIONS,
                    calls=ATTACK_CALLS,
                    program="attack",
                    args={"family": family},
                    user_prefix=f"adv_{profile}_{family}",
                    expect_fault=code,
                    expect_profile=profile,
                )
            )
    finally:
        await gateway.stop()
    return legal, attacks


def _cycles_per_call(report) -> float:
    assert report.ok == report.sent, report.check()
    return report.client_metrics["cycles"] / report.ok


def test_adversary_ab_live(benchmark):
    """Same workload, two profiles: cheaper crossings, equal security."""
    results = {
        profile: asyncio.run(_drive(profile))
        for profile in ("ringed", "baseline645")
    }

    # -- legal phase: the crossing-cost A/B --------------------------------
    per_call = {}
    for profile, (legal, _) in results.items():
        assert legal.check() == []
        per_call[profile] = _cycles_per_call(legal)
    ratio = per_call["baseline645"] / per_call["ringed"]
    assert ratio >= MIN_CYCLES_RATIO, (
        f"software rings are only {ratio:.2f}x the hardware cycle cost "
        f"for the same legal crossings (floor {MIN_CYCLES_RATIO}x)"
    )

    # -- adversarial phase: 100% fault rate on both profiles ---------------
    fault_rate = {}
    for profile, (_, attacks) in results.items():
        expected = sum(a.expected_faults for a in attacks)
        sent = sum(a.sent for a in attacks)
        leaked = sum(a.unexpected_ok for a in attacks)
        for report in attacks:
            assert report.check() == []
        assert leaked == 0, f"{profile}: {leaked} attack call(s) SUCCEEDED"
        assert expected == sent, (
            f"{profile}: only {expected}/{sent} attack calls faulted "
            "with the expected code"
        )
        fault_rate[profile] = expected / sent

    benchmark.extra_info["legal_calls_per_profile"] = (
        LEGAL_SESSIONS * LEGAL_CALLS
    )
    benchmark.extra_info["attack_calls_per_profile"] = (
        len(ATTACKS) * ATTACK_SESSIONS * ATTACK_CALLS
    )
    benchmark.extra_info["ringed_cycles_per_call"] = round(
        per_call["ringed"], 1
    )
    benchmark.extra_info["baseline645_cycles_per_call"] = round(
        per_call["baseline645"], 1
    )
    benchmark.extra_info["soft_over_hw_cycles_ratio"] = round(ratio, 2)
    benchmark.extra_info["attack_fault_rate_ringed"] = fault_rate["ringed"]
    benchmark.extra_info["attack_fault_rate_baseline645"] = fault_rate[
        "baseline645"
    ]

    benchmark(lambda: None)
