"""Experiment S2 — session virtualization under heavy user churn.

One population of ``REPRO_S2_USERS`` distinct users (default 100 000)
is driven through a session gateway holding at most ``SLOTS`` live
machines on ``WORKERS`` process workers.  Idle tenants park to
copy-on-write delta snapshots against a shared base image and hydrate
back on demand, so the serving set is bounded while the user set is
not.  Three claims to pin:

* **Exactness** (asserted on every host): zero drops across every
  phase; the gateway's merged architectural counters equal the
  client-side sum of per-call metrics *and* the closed-form workload
  arithmetic ``cold_calls * M_cold + warm_calls * M_warm``, where
  ``M_cold``/``M_warm`` are the cold-attach and warm-repeat metric
  vectors measured once on a reference engine.  A parked-and-hydrated
  machine is architecturally indistinguishable from one that never
  left memory — that identity is what makes the arithmetic close.
* **Parking is cheap** (asserted on every host): the mean parked
  delta is under 10% of a full machine snapshot
  (``park_delta_size_ratio``, gated via ``baseline_sessions.json``).
* **Hydration is bounded** (host-dependent, gated by
  ``REPRO_BENCH_STRICT``): the p99 latency of a deliberate
  hydrate-miss phase is at most 25x the median warm repeat call
  (``hydrate_p99_vs_warm``).
"""

from __future__ import annotations

import asyncio
import os

from repro.serve.gateway import GatewayConfig, RingGateway
from repro.serve.loadgen import percentile, run_load
from repro.serve.sessions import TENANT_MEMORY_WORDS
from repro.serve.workers import GateCallEngine
from repro.sim.machine import Machine
from repro.sim.metrics import MetricsSnapshot

STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: distinct users pushed through the bounded live set
USERS = int(os.environ.get("REPRO_S2_USERS", "100000"))

#: total live machine slots across all shards
SLOTS = 64

WORKERS = 4

#: call/return pairs inside one gate call
COUNT = 4

#: in-flight sessions during the churn phase — far above the live-slot
#: budget, so eviction/park runs continuously
CHURN_CONCURRENCY = 256

#: long-parked users re-called to measure the hydrate-miss path; driven
#: at one in-flight call per worker so the figure is hydration cost,
#: not queueing
HYDRATE_SAMPLE = 256

#: best-of phases for the hydrate-p99 gate, each over a disjoint slice
#: of long-parked users — one phase on a loaded CI runner is fsync and
#: scheduler roulette (same reasoning as bench_serve's THROUGHPUT_REPS;
#: exactness is asserted over every phase, wall clock on the best one)
HYDRATE_REPS = 3

WARM_SESSIONS = 8

WARM_CALLS = 4

#: acceptance ceilings (mirrored in baseline_sessions.json)
PARK_RATIO_CEILING = 0.10
HYDRATE_P99_CEILING = 25.0


def _reference_vectors():
    """(M_cold, M_warm): per-call architectural deltas on a fresh engine.

    The first call pays the cold attach (descriptor fetches, SDW
    misses); the second repeats warm through the fast-gate path.  Every
    tenant machine in the pool is configured identically, so these two
    vectors are the whole story: any parked-and-hydrated tenant's next
    call must land exactly on one of them.
    """
    engine = GateCallEngine(
        Machine(
            services=False,
            jit_tier_enabled=True,
            fast_gate=True,
            memory_words=TENANT_MEMORY_WORDS,
        )
    )
    job = {
        "user": "ref",
        "ring": 4,
        "program": "call_loop",
        "args": {"count": COUNT},
        "call_id": "ref-0",
    }
    cold = engine.run_job(job)["metrics"]
    warm = engine.run_job({**job, "call_id": "ref-1"})["metrics"]
    return cold, warm


def _merge(total, delta):
    for key, value in delta.items():
        total[key] = total.get(key, 0) + value


def test_s2_bounded_live_set_exactness(benchmark, tmp_path):
    """100k users over 64 slots: zero drops, exact merged counters."""
    m_cold, m_warm = _reference_vectors()

    async def main():
        gateway = RingGateway(
            GatewayConfig(
                port=0,
                workers=WORKERS,
                backend="process",
                max_sessions=SLOTS,
                session_store_dir=str(tmp_path / "store"),
                # the exactness contract wants zero drops even on a
                # heavily loaded host: with CHURN_CONCURRENCY calls
                # queued over WORKERS shards, a per-call deadline sized
                # for an idle machine would convert scheduler noise
                # into timeouts
                call_timeout=60.0,
            )
        )
        await gateway.start()
        try:
            churn = await run_load(
                "127.0.0.1",
                gateway.port,
                sessions=USERS,
                calls=1,
                args={"count": COUNT},
                user_prefix="s2u",
                concurrency=CHURN_CONCURRENCY,
                fetch_stats=False,
            )
            # the first users admitted are long since parked — these
            # phases are all hydrate misses (minus any prefetch wins),
            # each over a disjoint slice of the population
            sample = max(WORKERS, min(HYDRATE_SAMPLE, USERS // HYDRATE_REPS))
            hydrates = []
            for rep in range(HYDRATE_REPS):
                hydrates.append(
                    await run_load(
                        "127.0.0.1",
                        gateway.port,
                        sessions=sample,
                        calls=1,
                        args={"count": COUNT},
                        user_prefix="s2u",
                        user_offset=rep * sample,
                        concurrency=WORKERS,
                        fetch_stats=False,
                    )
                )
            warm = await run_load(
                "127.0.0.1",
                gateway.port,
                sessions=WARM_SESSIONS,
                calls=WARM_CALLS,
                args={"count": COUNT},
                user_prefix="s2w",
                concurrency=WORKERS,
            )
        finally:
            await gateway.stop()
        return churn, hydrates, warm

    churn, hydrates, warm = asyncio.run(main())
    phases = (churn, *hydrates, warm)

    # -- exactness: nothing dropped, all three ledgers agree ---------------
    for phase in phases:
        assert phase.dropped == 0, (phase.check(), phase.error_details)

    stats = warm.stats
    assert stats["consistent"]
    merged = stats["architectural"]

    client_total = {}
    for phase in phases:
        _merge(client_total, phase.client_metrics)
    assert merged == client_total
    # the self-check compares client metrics against the gateway's
    # cumulative counters, so hand it the all-phase aggregate
    warm.client_metrics = client_total
    assert warm.check() == []

    cold_calls = sum(phase.cold_calls for phase in phases)
    warm_calls = sum(phase.warm_calls for phase in phases)
    assert cold_calls + warm_calls == sum(phase.ok for phase in phases)
    expected = {
        key: cold_calls * m_cold[key] + warm_calls * m_warm[key]
        for key in MetricsSnapshot.ARCHITECTURAL
    }
    assert merged == expected

    # -- the live set stayed bounded while the user set was not ------------
    sessions = stats["sessions"]
    assert sessions["live"] <= SLOTS
    assert sessions["created"] >= USERS
    assert sessions["parks"] >= USERS - SLOTS
    assert sessions["evictions"] > 0
    for hydrate in hydrates:
        assert hydrate.hydrated + hydrate.prefetch_hits == hydrate.sessions

    # -- parked deltas are small -------------------------------------------
    park_ratio = sessions["park_size_ratio"]
    assert 0 < park_ratio < PARK_RATIO_CEILING

    # -- hydration cost is bounded -----------------------------------------
    hydrate_p99 = min(
        percentile(hydrate.cold_latencies_ms, 0.99) for hydrate in hydrates
    )
    warm_p50 = percentile(warm.warm_latencies_ms, 0.50)
    multiple = hydrate_p99 / warm_p50 if warm_p50 > 0 else float("inf")

    benchmark.extra_info["users"] = USERS
    benchmark.extra_info["live_slots"] = SLOTS
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["churn_throughput_calls_per_second"] = round(
        churn.throughput, 1
    )
    benchmark.extra_info["churn_p99_ms"] = round(churn.percentile(0.99), 3)
    benchmark.extra_info["hydrated"] = sessions["hydrated"]
    benchmark.extra_info["prefetch_hydrated"] = sessions.get(
        "prefetch_hydrated", 0
    )
    benchmark.extra_info["prefetch_hits"] = sessions.get("prefetch_hits", 0)
    benchmark.extra_info["park_delta_size_ratio"] = park_ratio
    benchmark.extra_info["hydrate_p99_ms"] = round(hydrate_p99, 3)
    benchmark.extra_info["warm_p50_ms"] = round(warm_p50, 3)
    benchmark.extra_info["hydrate_p99_vs_warm"] = round(multiple, 2)

    if STRICT:
        assert multiple <= HYDRATE_P99_CEILING, (
            f"hydrate-miss p99 {hydrate_p99:.1f} ms is {multiple:.1f}x the "
            f"warm median {warm_p50:.1f} ms (ceiling {HYDRATE_P99_CEILING}x)"
        )

    benchmark(lambda: None)
