"""Experiment M1 — processor multiplexing overhead vs quantum size.

Time-sharing is pure overhead from a single program's point of view:
every context switch costs a state save, a DBR load (flushing the SDW
associative memory), and a restore.  Sweeping the quantum shows the
classic trade-off — small quanta interleave finely but pay both the
switch cost and the post-switch SDW-cache misses.
"""

from repro.core.acl import AclEntry, RingBracketSpec
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

WORKER = """
        .seg    NAME
main::  lda     =40
loop:   sba     =1
        tnz     loop
        halt
"""


def run_with_quantum(quantum):
    machine = Machine(services=False)
    users = [machine.add_user(f"u{i}") for i in range(2)]
    processes = []
    for i, user in enumerate(users):
        machine.store_program(
            f">b>w{i}", WORKER.replace("NAME", f"w{i}"), acl=USER_ACL
        )
        process = machine.login(user)
        machine.initiate(process, f">b>w{i}")
        processes.append(process)
    scheduler = machine.make_scheduler(quantum=quantum)
    for i, process in enumerate(processes):
        scheduler.add(process, f"w{i}$main", ring=4)
    total = scheduler.run()
    return machine.processor.cycles, total, scheduler.context_switches


def test_m1_small_quantum(benchmark):
    cycles, instructions, switches = benchmark(lambda: run_with_quantum(5))
    benchmark.extra_info.update(
        cycles=cycles, instructions=instructions, switches=switches
    )


def test_m1_large_quantum(benchmark):
    cycles, instructions, switches = benchmark(lambda: run_with_quantum(200))
    benchmark.extra_info.update(
        cycles=cycles, instructions=instructions, switches=switches
    )


def test_m1_overhead_shrinks_with_quantum(benchmark):
    def run():
        return {q: run_with_quantum(q) for q in (5, 20, 200)}

    results = benchmark(run)
    # identical work at every quantum...
    instruction_counts = {r[1] for r in results.values()}
    assert len(instruction_counts) == 1
    # ...but cycles fall monotonically as the quantum grows
    cycles = [results[q][0] for q in (5, 20, 200)]
    assert cycles[0] > cycles[1] > cycles[2]
    benchmark.extra_info["cycles_by_quantum"] = {
        str(q): results[q][0] for q in (5, 20, 200)
    }
