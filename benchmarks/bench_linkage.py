"""Experiment D1 — dynamic linking: the cost profile of link snapping.

Multics context rather than paper text: inter-segment links resolve
lazily via linkage faults.  The benchmark shows the one-time cost of the
first reference (trap + snap) and that subsequent references are exactly
as cheap as eagerly linked ones — and that a snapped CALL still performs
its full Figure 8 validation.
"""

from repro.core.acl import AclEntry, RingBracketSpec
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

LOOP = """
        .seg    caller
main::  lda     =COUNT
loop:   eap4    back
        call    l_callee,*
back:   sba     =1
        tnz     loop
        halt
l_callee: .its  callee$entry
"""

CALLEE = """
        .seg    callee
        .gates  1
entry:: return  pr4|0
"""


def _run(lazy, count=16):
    machine = Machine(services=False, lazy_linking=lazy)
    user = machine.add_user("u")
    machine.store_program(
        ">b>callee",
        CALLEE,
        acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=5))],
    )
    machine.store_program(
        ">b>caller", LOOP.replace("COUNT", str(count)), acl=USER_ACL
    )
    process = machine.login(user)
    machine.initiate(process, ">b>caller")
    result = machine.run(process, "caller$main", ring=4)
    assert result.halted
    return machine, result


def test_d1_eager(benchmark):
    benchmark.extra_info["cycles"] = benchmark(lambda: _run(False)[1].cycles)


def test_d1_lazy(benchmark):
    benchmark.extra_info["cycles"] = benchmark(lambda: _run(True)[1].cycles)


def test_d1_snap_cost_is_one_time(benchmark):
    """Marginal per-call cost is identical lazy vs eager: only the first
    reference pays."""

    def run():
        costs = {}
        for lazy in (False, True):
            small = _run(lazy, count=8)[1].cycles
            large = _run(lazy, count=32)[1].cycles
            costs[lazy] = (large - small) / 24
        return costs

    costs = benchmark(run)
    assert costs[False] == costs[True]
    benchmark.extra_info["cycles_per_call"] = costs[True]


def test_d1_exactly_one_snap(benchmark):
    def run():
        machine, _ = _run(True)
        return machine.supervisor.linkage.snaps

    assert benchmark(run) == 1
