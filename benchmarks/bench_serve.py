"""Experiment S1 — the ring gateway under concurrent mixed-ring load.

Three claims to pin:

* **Exactness** (asserted on every host): with the load generator as
  the gateway's sole traffic, every request terminates explicitly
  (OK / retried-to-OK — zero drops), and the ``stats`` verb's merged
  architectural counters equal both the integer sum of the per-worker
  snapshots *and* the workload arithmetic (``2 * COUNT`` ring crossings
  per gate call) — the fleet's merge contract held across TCP.
* **Throughput** (host-dependent, gated): on at least four host cores
  the process backend sustains >= 1000 gate calls/s aggregate with
  four persistent-machine workers.  Gated by ``REPRO_BENCH_STRICT``
  like every wall-clock assertion; the figures are recorded into
  ``benchmark.extra_info`` regardless.
* **Backpressure is explicit** (asserted on every host): under a
  deliberately tiny rate limit, rejections appear, carry
  ``retry_after``, and a client that honours them still completes
  every request.
"""

from __future__ import annotations

import asyncio
import os

from repro.serve.admission import RingPolicy
from repro.serve.gateway import GatewayConfig, RingGateway
from repro.serve.loadgen import run_load

WORKERS = 4

SESSIONS = 24

#: gate calls per session; SESSIONS * CALLS aggregate per burst
CALLS = 50

#: call/return pairs inside one gate call
COUNT = 4

RINGS = (4, 5)

STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: the acceptance floor: aggregate completed gate calls per second
THROUGHPUT_TARGET = 1000.0

#: best-of bursts for the throughput gate — one burst on a loaded CI
#: runner is scheduler roulette (the same reasoning as the interleaved
#: best-of-REPS timing in bench_host_throughput); exactness is asserted
#: on every burst, wall clock only on the best one
THROUGHPUT_REPS = 3


def _burst(
    backend,
    sessions=SESSIONS,
    calls=CALLS,
    program="call_loop",
    args=None,
    policy=None,
):
    """One gateway lifecycle: start, drive a burst, stats, drain."""

    async def main():
        config = GatewayConfig(
            port=0, workers=WORKERS, backend=backend
        )
        if policy is not None:
            config.default_policy = policy
        gateway = RingGateway(config)
        await gateway.start()
        try:
            report = await run_load(
                "127.0.0.1",
                gateway.port,
                sessions=sessions,
                calls=calls,
                program=program,
                args=dict(args or {"count": COUNT}),
                rings=RINGS,
            )
        finally:
            await gateway.stop()
        return report

    return asyncio.run(main())


def test_s1_throughput_and_merge_exactness(benchmark):
    """>= 1k gate calls/s on 4 process workers; stats figures exact."""
    report = _burst("process")
    total = SESSIONS * CALLS

    # Zero dropped requests: every call terminated with an OK (possibly
    # after honoured rejections) — no timeouts, errors, or give-ups.
    assert report.ok == total
    assert report.dropped == 0
    assert report.check() == []

    stats = report.stats
    assert stats["consistent"]
    per_worker = list(stats["workers"]["per_worker"].values())
    # merged architectural counters == integer sum of per-worker
    # snapshots, counter by counter
    for counter, value in stats["architectural"].items():
        assert value == sum(
            worker["architectural"][counter] for worker in per_worker
        )
    # and both equal the workload arithmetic
    assert stats["architectural"]["calls"] == total * COUNT
    assert stats["architectural"]["returns"] == total * COUNT
    assert stats["architectural"]["ring_crossings"] == total * 2 * COUNT
    assert stats["gateway"]["completed"] == total
    assert sum(worker["calls"] for worker in per_worker) == total

    cores = os.cpu_count() or 1
    backend = stats["workers"]["backend"]
    benchmark.extra_info["host_cores"] = cores
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["sessions"] = SESSIONS
    benchmark.extra_info["gate_calls"] = total
    benchmark.extra_info["latency_p50_ms"] = round(report.percentile(0.5), 3)
    benchmark.extra_info["latency_p99_ms"] = round(report.percentile(0.99), 3)
    benchmark.extra_info["merged_ring_crossings"] = stats["architectural"][
        "ring_crossings"
    ]

    best = report.throughput
    if STRICT and cores >= WORKERS and backend == "process":
        for _ in range(THROUGHPUT_REPS - 1):
            if best >= THROUGHPUT_TARGET:
                break  # already over the floor; don't burn CI time
            retry = _burst("process")
            assert retry.ok == total
            assert retry.dropped == 0
            best = max(best, retry.throughput)
        assert best >= THROUGHPUT_TARGET, (
            f"gateway sustained {best:.0f} gate calls/s (best of "
            f"{THROUGHPUT_REPS} bursts) on {cores} cores; expected "
            f">= {THROUGHPUT_TARGET:.0f}"
        )
    benchmark.extra_info["throughput_calls_per_second"] = round(best, 1)

    # timed section: a short burst on the thread backend (cheap start-up,
    # so pytest-benchmark's rounds stay affordable)
    benchmark(lambda: _burst("thread", sessions=4, calls=5))


def test_s1_backpressure_is_explicit_and_lossless(benchmark):
    """A tiny rate limit produces rejections, never silent drops."""
    tight = RingPolicy(rate=50.0, burst=1, max_pending=4)
    report = _burst(
        "thread",
        sessions=8,
        calls=10,
        program="echo",
        args={"value": 7},
        policy=tight,
    )
    assert report.rejected > 0, "expected rate-limit rejections"
    assert report.ok == 8 * 10
    assert report.dropped == 0
    assert report.check() == []
    assert report.stats["gateway"]["rejected_rate_limited"] > 0

    benchmark.extra_info["rejections"] = report.rejected
    benchmark.extra_info["retried_to_ok"] = report.ok
    benchmark(lambda: _burst("thread", sessions=2, calls=4))
