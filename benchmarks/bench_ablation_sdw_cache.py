"""Experiment A2 — ablation: the SDW associative memory.

The ring checks ride on SDW fields the processor must consult for
address translation anyway ("there is little effort added to validate
the intended access against constraints recorded there", p. 8) — but
only because the SDW is at hand.  Without an associative memory every
reference pays two extra memory cycles for the SDW pair.  This ablation
quantifies that, and checks the cache changes no behaviour.
"""

from conftest import build_call_loop_machine


def _run(sdw_cache_enabled):
    machine, process = build_call_loop_machine(
        target_ring=0, count=16, sdw_cache_enabled=sdw_cache_enabled
    )
    result = machine.run(process, "caller$main", ring=4)
    assert result.halted
    return machine, result


def test_a2_with_cache(benchmark):
    def run():
        _, result = _run(True)
        return result.cycles

    benchmark.extra_info["cycles"] = benchmark(run)


def test_a2_without_cache(benchmark):
    def run():
        _, result = _run(False)
        return result.cycles

    benchmark.extra_info["cycles"] = benchmark(run)


def test_a2_cache_saves_cycles_but_changes_nothing(benchmark):
    def run():
        m_on, r_on = _run(True)
        m_off, r_off = _run(False)
        return r_on, r_off, m_on.processor.sdw_cache.stats()

    r_on, r_off, stats = benchmark(run)
    assert r_off.cycles > r_on.cycles
    # identical architectural outcome
    assert (r_on.a, r_on.ring, r_on.ring_crossings) == (
        r_off.a,
        r_off.ring,
        r_off.ring_crossings,
    )
    assert stats["hits"] > stats["misses"]
    benchmark.extra_info["cycles_saved"] = r_off.cycles - r_on.cycles
    benchmark.extra_info["hit_rate"] = stats["hits"] / (
        stats["hits"] + stats["misses"]
    )
