"""Setup shim for offline editable installs (no wheel package available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Behavioural reproduction of Schroeder & Saltzer's hardware "
        "protection rings (SOSP 1971)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
