#!/usr/bin/env python3
"""The grading sandbox: untrusted student code isolated in ring 6 (p. 37).

"Ring 6 of a process might be used, for example, to provide a suitably
isolated environment for student programs being evaluated by a grading
program executing in ring 4."

The grader (ring 4) calls each student's ``solve`` entry with an input
in A.  The call is *upward* — completed by the supervisor's return-gate
machinery since upward calls are the one crossing the hardware hands to
software — and the student code runs with ring-6 rights only: it cannot
reach inner-ring gates (their gate extensions stop at ring 5), cannot
touch the grader's ring-4 stack, and cannot read ring-4 data.

The grader and all three student submissions come from the serving
catalog (:mod:`repro.serve.catalog`, program ``grading_sandbox``) so
grading is also a multi-tenant gateway workload; this script installs
the variants on a standalone machine.

Run:  python examples/grading_sandbox.py
"""

from repro import Fault, Machine
from repro.serve.catalog import build_program, install_image

LABELS = {
    0: "honest student: solve(x) = x + 37",
    1: "student who calls a guarded inner-ring gate",
    2: "student who pokes the grader's stack",
}


def grade(variant: int) -> None:
    machine = Machine(services=False)
    grader = machine.add_user("grader")
    process = machine.login(grader)
    entry = install_image(
        machine, process, build_program("grading_sandbox", {"variant": variant})
    )
    print(f"== {LABELS[variant]} ==")
    try:
        result = machine.run(process, entry, ring=4)
    except Fault as fault:
        print(f"   sandbox violation: {fault.code.name} ({fault.code.label})")
        print("   grade: DISQUALIFIED")
        return
    verdict = "PASS" if result.a == 0 else f"FAIL (off by {result.a})"
    print(f"   returned to ring {result.ring}; grade: {verdict}")


def main() -> None:
    for variant in (0, 1, 2):
        grade(variant)
    print()
    print("Ring 6 confined every escape attempt; the honest submission ran")
    print("and returned through the software-stacked return gate to ring 4.")


if __name__ == "__main__":
    main()
