#!/usr/bin/env python3
"""The grading sandbox: untrusted student code isolated in ring 6 (p. 37).

"Ring 6 of a process might be used, for example, to provide a suitably
isolated environment for student programs being evaluated by a grading
program executing in ring 4."

The grader (ring 4) calls each student's ``solve`` entry with an input
in A.  The call is *upward* — completed by the supervisor's return-gate
machinery since upward calls are the one crossing the hardware hands to
software — and the student code runs with ring-6 rights only: it cannot
call supervisor gates (their gate extensions stop at ring 5), cannot
touch the grader's ring-4 stack, and cannot read ring-4 data.

Run:  python examples/grading_sandbox.py
"""

from repro import AclEntry, Fault, Machine, RingBracketSpec

GRADER = """
; grader - ring 4; calls one student solution and checks the answer
        .seg    grader
main::  lda     =5             ; the test input
        eap4    back
        call    l_student,*    ; upward call into ring 6
back:   sba     =42            ; expected answer is 42
        halt                   ; A == 0 means PASS
l_student: .its  student$solve
"""

HONEST = """
; student - adds 37, as the assignment asked
        .seg    student
        .gates  1
solve:: ada     =37
        return  pr4|0
"""

CHEAT_SUPERVISOR = """
; student - tries to call a supervisor gate from ring 6
        .seg    student
        .gates  1
solve:: eap4    back
        call    l_svc,*
back:   return  pr4|0
l_svc:  .its    svc$write
"""

CHEAT_STACK = """
; student - tries to scribble on the grader's ring-4 stack
        .seg    student
        .gates  1
solve:: lda     =0
        sta     pr6|1          ; PR6 came from the grader...
        return  pr4|0
"""

STUDENT_ACL = [AclEntry("*", RingBracketSpec.procedure(6))]
GRADER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


def grade(source: str, label: str) -> None:
    machine = Machine()
    grader = machine.add_user("grader")
    machine.store_program(">udd>grader>grader", GRADER, acl=GRADER_ACL)
    machine.store_program(">udd>grader>student", source, acl=STUDENT_ACL)
    process = machine.login(grader)
    machine.initiate(process, ">udd>grader>grader")
    print(f"== {label} ==")
    try:
        result = machine.run(process, "grader$main", ring=4)
    except Fault as fault:
        print(f"   sandbox violation: {fault.code.name} ({fault.code.label})")
        print("   grade: DISQUALIFIED")
        return
    verdict = "PASS" if result.a == 0 else f"FAIL (off by {result.a})"
    print(f"   returned to ring {result.ring}; grade: {verdict}")


def main() -> None:
    grade(HONEST, "honest student: solve(x) = x + 37")
    grade(CHEAT_SUPERVISOR, "student who calls supervisor gates")
    grade(CHEAT_STACK, "student who pokes the grader's stack")
    print()
    print("Ring 6 confined every escape attempt; the honest submission ran")
    print("and returned through the software-stacked return gate to ring 4.")


if __name__ == "__main__":
    main()
