#!/usr/bin/env python3
"""The limitation the paper owns up to: no mutually suspicious programs.

"The subset access property of rings of protection does not provide for
what may be called 'mutually suspicious programs' operating under the
control of a single process" (Conclusions, p. 38).  Rings are totally
ordered: whichever of two subsystems gets the lower number can read and
write everything the higher one can — protection is one-directional by
construction.

This demo sets up vendor A's subsystem in ring 2 and vendor B's in ring
3 of the same process, each with "private" data bracketed to its own
ring, and shows:

* B (ring 3) cannot touch A's ring-2 data — the rings protect A;
* A (ring 2) reads B's ring-3 data freely — *nothing* protects B,
  because every ring-3 capability is a subset of ring 2's;
* swapping the assignment merely swaps the victim.

The story is built by the serving catalog
(:mod:`repro.serve.catalog`, program ``mutual_suspicion``) so the same
segments are a multi-tenant gateway workload; this script installs
them on a standalone machine.  The paper accepts the asymmetry as the
price of the total ordering that makes the hardware simple ("it is
just that subset property which imposes an organization which is easy
to understand").  Capability systems (its refs [5, 8, 13]) are the
roads not taken here.

Run:  python examples/mutual_suspicion.py
"""

from repro import Fault, Machine
from repro.serve.catalog import build_program, install_image


def main() -> None:
    machine = Machine(services=False)
    user = machine.add_user("u")
    process = machine.login(user)

    # attacker_ring picks the direction of the spying
    b_attacks = install_image(
        machine, process, build_program("mutual_suspicion", {"attacker_ring": 3})
    )
    a_attacks = install_image(
        machine, process, build_program("mutual_suspicion", {"attacker_ring": 2})
    )

    print("== vendor B (ring 3) attacks vendor A's ring-2 data ==")
    try:
        machine.run(process, b_attacks, ring=4)
    except Fault as fault:
        print(f"   blocked by the rings: {fault.code.name}")

    print("== vendor A (ring 2) attacks vendor B's ring-3 data ==")
    result = machine.run(process, a_attacks, ring=4)
    print(f"   succeeds: A read B's secret word = {result.a:#o}")
    assert result.a == 0o102

    print()
    print("Protection between A and B is one-directional: the inner ring")
    print("always wins.  The paper names this the cost of the nested-subset")
    print("property — the very property that made the hardware implementable.")


if __name__ == "__main__":
    main()
