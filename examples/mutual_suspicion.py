#!/usr/bin/env python3
"""The limitation the paper owns up to: no mutually suspicious programs.

"The subset access property of rings of protection does not provide for
what may be called 'mutually suspicious programs' operating under the
control of a single process" (Conclusions, p. 38).  Rings are totally
ordered: whichever of two subsystems gets the lower number can read and
write everything the higher one can — protection is one-directional by
construction.

This demo sets up vendor A's subsystem in ring 2 and vendor B's in ring
3 of the same process, each with "private" data bracketed to its own
ring, and shows:

* B (ring 3) cannot touch A's ring-2 data — the rings protect A;
* A (ring 2) reads B's ring-3 data freely — *nothing* protects B,
  because every ring-3 capability is a subset of ring 2's;
* swapping the assignment merely swaps the victim.

The paper accepts this as the price of the total ordering that makes
the hardware simple ("it is just that subset property which imposes an
organization which is easy to understand").  Capability systems (its
refs [5, 8, 13]) are the roads not taken here.

Run:  python examples/mutual_suspicion.py
"""

from repro import AclEntry, Fault, Machine, RingBracketSpec


def build(machine):
    user = machine.add_user("u")
    machine.store_data(
        ">vendors>a_secret", [0o101], acl=[AclEntry("*", RingBracketSpec.data(2))]
    )
    machine.store_data(
        ">vendors>b_secret", [0o102], acl=[AclEntry("*", RingBracketSpec.data(3))]
    )
    # vendor B's code, running in ring 3, tries to read A's secret
    machine.store_program(
        ">vendors>b_spy",
        """
        .seg    b_spy
        .gates  1
spy::   lda     l_a,*
        return  pr4|0
l_a:    .its    a_secret
""",
        acl=[AclEntry("*", RingBracketSpec.procedure(3, callable_from=5))],
    )
    # vendor A's code, running in ring 2, reads B's secret
    machine.store_program(
        ">vendors>a_spy",
        """
        .seg    a_spy
        .gates  1
spy::   lda     l_b,*
        return  pr4|0
l_b:    .its    b_secret
""",
        acl=[AclEntry("*", RingBracketSpec.procedure(2, callable_from=5))],
    )
    machine.store_program(
        ">u>driver",
        """
        .seg    driver
main::  eap4    back
        call    l_spy,*
back:   halt
l_spy:  .its    TARGET$spy
""".replace("TARGET", "b_spy"),
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )
    machine.store_program(
        ">u>driver2",
        """
        .seg    driver2
main::  eap4    back
        call    l_spy,*
back:   halt
l_spy:  .its    a_spy$spy
""",
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )
    process = machine.login(user)
    machine.initiate(process, ">u>driver")
    machine.initiate(process, ">u>driver2")
    return process


def main() -> None:
    machine = Machine(services=False)
    process = build(machine)

    print("== vendor B (ring 3) attacks vendor A's ring-2 data ==")
    try:
        machine.run(process, "driver$main", ring=4)
    except Fault as fault:
        print(f"   blocked by the rings: {fault.code.name}")

    print("== vendor A (ring 2) attacks vendor B's ring-3 data ==")
    result = machine.run(process, "driver2$main", ring=4)
    print(f"   succeeds: A read B's secret word = {result.a:#o}")
    assert result.a == 0o102

    print()
    print("Protection between A and B is one-directional: the inner ring")
    print("always wins.  The paper names this the cost of the nested-subset")
    print("property — the very property that made the hardware implementable.")


if __name__ == "__main__":
    main()
