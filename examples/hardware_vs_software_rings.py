#!/usr/bin/env python3
"""The headline claim, measured: hardware rings vs the 645 baseline.

"Using these improved hardware access control mechanisms, downward
calls and upward returns occur without the intervention of a
supervisor procedure and are performed by the same object code
sequences that perform all calls and returns" (paper p. 18).

The same workload — a loop of call/return pairs — runs on both
simulated machines, against a same-ring callee and a ring-0 gated
callee.  On the new hardware, the downward call costs the same few
cycles as the same-ring call; on the 645 model every crossing traps to
the supervisor and pays two orders of magnitude more.

Run:  python examples/hardware_vs_software_rings.py
"""

from repro.analysis.report import crossing_cost_experiment, format_table


def main() -> None:
    rows = crossing_cost_experiment()
    print(
        format_table(
            ["scenario", "hardware rings", "645 software rings", "ratio"],
            [
                [
                    row.scenario,
                    f"{row.hardware_cycles:.1f} cycles",
                    f"{row.software_cycles:.1f} cycles",
                    f"{row.ratio:.1f}x",
                ]
                for row in rows
            ],
            title="Cost of one call/return pair (marginal simulated cycles)",
        )
    )
    same, down = rows
    print()
    print(
        f"On the new hardware a downward call costs "
        f"{down.hardware_cycles - same.hardware_cycles:+.1f} cycles over a "
        f"same-ring call;\non the 645 it costs "
        f"{down.software_cycles - same.software_cycles:+.1f}. "
        "\"A call by a user procedure to a protected subsystem is identical"
        "\nto a call to a companion user procedure\" — the abstract, reproduced."
    )


if __name__ == "__main__":
    main()
