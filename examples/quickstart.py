#!/usr/bin/env python3
"""Quickstart: a ring-4 user program calls ring-0 supervisor gates.

Builds a complete simulated system, stores a small assembly program,
logs a user in, and runs it.  The program calls three standard
supervisor gates — console output, "what ring called me?", and a
protected counter — each crossing from ring 4 down to ring 0 and back
*without trapping to the supervisor*, which is the paper's headline
mechanism.

Run:  python examples/quickstart.py
"""

from repro import AclEntry, Machine, RingBracketSpec, TraceLog

PROGRAM = """
; hello - a ring-4 user program exercising supervisor gates
        .seg    hello
main::  lda     =42
        eap4    back1          ; PR4 := return point
        call    l_write,*      ; ring 4 -> ring 0 -> ring 4
back1:  eap4    back2
        call    l_getring,*    ; ask ring 0 who called
back2:  sta     pr6|2          ; stash the answer in my stack
        eap4    back3
        call    l_bump,*       ; bump the ring-0 counter
back3:  halt

l_write:   .its  svc$write
l_getring: .its  svc$getring
l_bump:    .its  svc$bump
"""


def main() -> None:
    machine = Machine()
    alice = machine.add_user("alice")
    machine.store_program(
        ">udd>alice>hello",
        PROGRAM,
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )

    process = machine.login(alice)
    machine.initiate(process, ">udd>alice>hello")

    trace = TraceLog()
    trace.attach(machine.processor)
    result = machine.run(process, "hello$main", ring=4)
    trace.detach()

    print("=== execution trace (ring transitions visible per line) ===")
    print(trace.render())
    print()
    print("=== results ===")
    print(f"halted cleanly:        {result.halted}")
    print(f"console received:      {result.console}")
    print(f"final ring:            {result.ring}")
    print(f"ring crossings:        {result.ring_crossings}")
    print(f"instructions:          {result.instructions}")
    print(f"simulated cycles:      {result.cycles}")
    print(f"counter after bump:    {result.a}")

    stack_sdw = process.dseg.get(process.stack_segno(4))
    caller_ring = machine.memory.peek_block(stack_sdw.addr + 2, 1)[0]
    print(f"ring seen by getring:  {caller_ring} (the caller's ring, as p. 19 promises)")

    assert result.halted and result.console == [42] and caller_ring == 4


if __name__ == "__main__":
    main()
