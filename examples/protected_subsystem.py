#!/usr/bin/env python3
"""The paper's motivating example: an audited protected subsystem.

"User A may wish to allow user B to access a sensitive data segment,
but only through a special program, provided by A, that audits
references to the segment" (paper pp. 9-10).

Alice owns a sensitive segment whose read/write brackets end at ring 2,
plus an audit procedure that executes in ring 2 with gates callable
from the user rings.  Bob's ring-4 process can obtain the data only by
calling the gate; every access leaves an audit record; any attempt to
read the segment directly, to jump past the gate, or to patch the audit
code is refused by the hardware.

Run:  python examples/protected_subsystem.py
"""

from repro import AclEntry, Fault, Machine, RingBracketSpec

SECRETS = [1111, 2222, 3333]

AUDIT = """
; audit - alice's ring-2 protected subsystem; gate at word 0
        .seg    audit
        .gates  1
read::  tra     body           ; the only legitimate entrance
body:   aos     l_count,*      ; audit: count this access
        eap2    l_secret,*     ; PR2 := base of the secret table
        lda     pr2|0,x        ; A(low) indexes off the base pointer
        return  pr4|0
l_count:  .its  auditlog
l_secret: .its  secrets
"""

READER = """
; reader - bob's well-behaved client
        .seg    reader
main::  lda     =1             ; ask for secret #1
        eap4    back
        call    l_read,*
back:   halt
l_read: .its    audit$read
"""

THIEF = """
; thief - bob tries to read the secrets directly
        .seg    thief
main::  lda     l_secret,*
        halt
l_secret: .its  secrets
"""

SNEAK = """
; sneak - bob tries to CALL past the gate into the audit body
        .seg    sneak
main::  eap4    back
        call    l_body,*
back:   halt
l_body: .its    audit$read+1   ; word 1 is not a gate
"""


def main() -> None:
    machine = Machine()
    alice = machine.add_user("alice")
    bob = machine.add_user("bob")

    machine.store_data(
        ">udd>alice>secrets",
        SECRETS,
        owner=alice,
        acl=[AclEntry("*", RingBracketSpec.data(2))],  # ring <= 2 only
    )
    machine.store_data(
        ">udd>alice>auditlog",
        [0],
        owner=alice,
        acl=[AclEntry("*", RingBracketSpec.data(2))],
    )
    machine.store_program(
        ">udd>alice>audit",
        AUDIT,
        owner=alice,
        acl=[AclEntry("*", RingBracketSpec.procedure(2, callable_from=5))],
    )
    for path, src in ((">udd>bob>reader", READER), (">udd>bob>thief", THIEF), (">udd>bob>sneak", SNEAK)):
        machine.store_program(
            path, src, owner=bob, acl=[AclEntry("*", RingBracketSpec.procedure(4))]
        )

    process = machine.login(bob)
    machine.initiate(process, ">udd>bob>reader")
    machine.initiate(process, ">udd>bob>thief")
    machine.initiate(process, ">udd>bob>sneak")

    print("== 1. bob reads through alice's audit gate ==")
    result = machine.run(process, "reader$main", ring=4)
    print(f"   secret #1 = {result.a}; returned to ring {result.ring}")
    assert result.a == SECRETS[1]

    result = machine.run(process, "reader$main", ring=4)
    log = machine.supervisor.activate(">udd>alice>auditlog")
    count = machine.memory.peek_block(log.placed.addr, 1)[0]
    print(f"   audit log records {count} accesses")
    assert count == 2

    print("== 2. bob tries to read the secrets directly ==")
    try:
        machine.run(process, "thief$main", ring=4)
    except Fault as fault:
        print(f"   refused by hardware: {fault.code.name} ({fault.code.label})")

    print("== 3. bob tries to call past the gate ==")
    try:
        machine.run(process, "sneak$main", ring=4)
    except Fault as fault:
        print(f"   refused by hardware: {fault.code.name} ({fault.code.label})")

    print()
    print("The sensitive segment was reachable only through alice's audit")
    print("program, exactly as the paper's protected-subsystem story requires.")


if __name__ == "__main__":
    main()
