#!/usr/bin/env python3
"""Self-protection: debugging an untested program in ring 5 (p. 37).

"A user may debug a program by executing it in ring 5, where only
procedure and data segments intended to be referenced by the program
would be made accessible.  The ring protection mechanisms would detect
many of the addressing errors that could be made by the program and
would prevent the untested program from accidently damaging other
segments accessible from ring 4."

The same buggy binary is run twice: once in ring 5 (the bug is caught,
ring-4 data survives) and once promoted to ring 4 after "certification"
(it runs — programming generality: the protection environment changed,
the program did not).

The binary and its ring-4 victim data come from the serving catalog
(:mod:`repro.serve.catalog`, program ``debug``), where the *session
ring* of a gateway caller decides the same outcome; this script
installs them on a standalone machine.

Run:  python examples/debug_ring5.py
"""

from repro import Fault, Machine
from repro.serve.catalog import build_program, install_image


def main() -> None:
    machine = Machine(services=False)
    dev = machine.add_user("dev")
    process = machine.login(dev)
    entry = install_image(
        machine, process, build_program("debug", {"value": 123})
    )

    print("== run the untested program in ring 5 ==")
    try:
        machine.run(process, entry, ring=5)
    except Fault as fault:
        print(f"   caught by ring hardware: {fault.code.name}")
        print(f"   at instruction ({fault.at_segno},{fault.at_wordno}), "
              f"target ({fault.segno},{fault.wordno}), effective ring {fault.ring}")

    precious = machine.supervisor.activate(">serve>db_prec")
    data = machine.memory.peek_block(precious.placed.addr, 4)
    print(f"   ring-4 data after the crash: {data}  (unharmed)")
    assert data == [7, 7, 7, 7]

    print("== the developer decides the write was intended; certify to ring 4 ==")
    result = machine.run(process, entry, ring=4)
    data = machine.memory.peek_block(precious.placed.addr, 4)
    print(f"   ran to completion in ring 4; data now {data}")
    assert result.halted and data[0] == 123

    print()
    print("One binary, two protection environments — no change to the")
    print("program's internal structure (programming generality, p. 5).")


if __name__ == "__main__":
    main()
