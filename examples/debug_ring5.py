#!/usr/bin/env python3
"""Self-protection: debugging an untested program in ring 5 (p. 37).

"A user may debug a program by executing it in ring 5, where only
procedure and data segments intended to be referenced by the program
would be made accessible.  The ring protection mechanisms would detect
many of the addressing errors that could be made by the program and
would prevent the untested program from accidently damaging other
segments accessible from ring 4."

The same buggy binary is run twice: once in ring 5 (the bug is caught,
ring-4 data survives) and once promoted to ring 4 after "certification"
(it runs — programming generality: the protection environment changed,
the program did not).

Run:  python examples/debug_ring5.py
"""

from repro import AclEntry, Fault, Machine, RingBracketSpec

BUGGY = """
; buggy - writes through a wild pointer into ring-4 data
        .seg    buggy
main::  lda     =123
        sta     l_wild,*       ; the addressing error
        halt
l_wild: .its    precious
"""

SCRATCH_ACL = [AclEntry("*", RingBracketSpec.data(5))]   # debug workspace
PRECIOUS_ACL = [AclEntry("*", RingBracketSpec.data(4))]  # ring-4 data


def main() -> None:
    machine = Machine()
    dev = machine.add_user("dev")

    machine.store_data(">udd>dev>precious", [7, 7, 7, 7], acl=PRECIOUS_ACL)
    machine.store_data(">udd>dev>scratch", [0, 0, 0, 0], acl=SCRATCH_ACL)
    machine.store_program(
        ">udd>dev>buggy",
        BUGGY,
        acl=[
            # debug grant: executable in ring 5
            AclEntry("*", RingBracketSpec(r1=4, r2=5, r3=5, read=True, execute=True)),
        ],
    )

    process = machine.login(dev)
    machine.initiate(process, ">udd>dev>buggy")

    print("== run the untested program in ring 5 ==")
    try:
        machine.run(process, "buggy$main", ring=5)
    except Fault as fault:
        print(f"   caught by ring hardware: {fault.code.name}")
        print(f"   at instruction ({fault.at_segno},{fault.at_wordno}), "
              f"target ({fault.segno},{fault.wordno}), effective ring {fault.ring}")

    precious = machine.supervisor.activate(">udd>dev>precious")
    data = machine.memory.peek_block(precious.placed.addr, 4)
    print(f"   ring-4 data after the crash: {data}  (unharmed)")
    assert data == [7, 7, 7, 7]

    print("== the developer decides the write was intended; certify to ring 4 ==")
    result = machine.run(process, "buggy$main", ring=4)
    data = machine.memory.peek_block(precious.placed.addr, 4)
    print(f"   ran to completion in ring 4; data now {data}")
    assert result.halted and data[0] == 123

    print()
    print("One binary, two protection environments — no change to the")
    print("program's internal structure (programming generality, p. 5).")


if __name__ == "__main__":
    main()
