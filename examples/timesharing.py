#!/usr/bin/env python3
"""Time-sharing: one processor, two users, one shared segment.

The paper's opening scenario is the computer utility: many users, each
with a separate virtual memory, sharing segments when they choose.
"Changing the absolute address in the DBR of a processor will cause the
address translation logic to interpret two-part addresses relative to a
different descriptor segment" (p. 7) — this demo does exactly that,
round-robin, while alice's and bob's programs increment a shared
counter and their own private tallies.

Observe: the shared segment accumulates both users' work; each process
keeps its private state across preemptions; and the ring protection on
the shared counter (writable in ring 4) applies identically in both
virtual memories.

Run:  python examples/timesharing.py
"""

from repro import AclEntry, Machine, RingBracketSpec

WORKER = """
        .seg    NAME
main::  lda     =COUNT
loop:   aos     l_shared,*     ; the shared counter
        aos     pr6|3          ; my private tally, in my own stack
        sba     =1
        tnz     loop
        halt
l_shared: .its  shared
"""

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


def main() -> None:
    machine = Machine()
    alice = machine.add_user("alice")
    bob = machine.add_user("bob")

    machine.store_data(">shared", [0], acl=[AclEntry("*", RingBracketSpec.data(4))])
    machine.store_program(
        ">udd>alice>worker_a",
        WORKER.replace("NAME", "worker_a").replace("COUNT", "40"),
        owner=alice,
        acl=USER_ACL,
    )
    machine.store_program(
        ">udd>bob>worker_b",
        WORKER.replace("NAME", "worker_b").replace("COUNT", "25"),
        owner=bob,
        acl=USER_ACL,
    )

    process_a = machine.login(alice)
    process_b = machine.login(bob)
    machine.initiate(process_a, ">udd>alice>worker_a")
    machine.initiate(process_b, ">udd>bob>worker_b")

    scheduler = machine.make_scheduler(quantum=16)
    job_a = scheduler.add(process_a, "worker_a$main", ring=4)
    job_b = scheduler.add(process_b, "worker_b$main", ring=4)
    total = scheduler.run()

    shared = machine.supervisor.activate(">shared")
    shared_count = machine.memory.peek_block(shared.placed.addr, 1)[0]

    def private_tally(process):
        stack = process.dseg.get(process.stack_segno(4))
        return machine.memory.peek_block(stack.addr + 3, 1)[0]

    print("== time-sharing run complete ==")
    print(f"   total instructions executed: {total}")
    print(f"   context switches:            {scheduler.context_switches}")
    print(f"   alice: {job_a.quanta} quanta, private tally {private_tally(process_a)}")
    print(f"   bob:   {job_b.quanta} quanta, private tally {private_tally(process_b)}")
    print(f"   shared counter:              {shared_count}  (= 40 + 25)")

    assert shared_count == 65
    assert private_tally(process_a) == 40
    assert private_tally(process_b) == 25
    assert job_a.quanta > 1 and job_b.quanta > 1

    print()
    print("Two virtual memories, one physical counter segment, interleaved")
    print("on one processor — the computer-utility substrate the rings protect.")


if __name__ == "__main__":
    main()
