#!/usr/bin/env python3
"""A layered supervisor enforced by rings (paper pp. 34-36).

The lowest-level primitives live in ring 0; the rest of the supervisor
lives in ring 1.  Gates into ring 0 are reachable *only from ring 1* —
they are the internal interface between the layers — while ring 1
exports gates to the user rings.  A user program's service request
flows 4 -> 1 -> 0 -> 1 -> 4, every crossing performed by the hardware
CALL/RETURN without software help.

The demo then shows the layering enforced: the user calling the ring-0
gate directly is refused, and a change to the ring-1 layer cannot touch
ring-0 data (the error-confinement argument for layered supervisors).

Both layers and both user programs come from the serving catalog
(:mod:`repro.serve.catalog`, program ``layered``) so the layered
service is also a multi-tenant gateway workload; this script installs
them on a standalone machine.

Run:  python examples/layered_supervisor.py
"""

from repro import Fault, Machine
from repro.serve.catalog import build_program, install_image


def main() -> None:
    machine = Machine(services=False)
    user = machine.add_user("u")
    process = machine.login(user)

    app = install_image(
        machine, process, build_program("layered", {"n": 1})
    )
    direct = install_image(
        machine, process, build_program("layered", {"direct": 1})
    )

    print("== service request through the layers ==")
    result = machine.run(process, app, ring=4)
    print(f"   result A = {result.a}  (1 + 100 from ring 1 + 1000 from ring 0)")
    print(f"   ring crossings: {result.ring_crossings}  (4->1, 1->0, 0->1, 1->4)")
    print(f"   back in ring {result.ring}, {result.cycles} cycles, no supervisor traps for the crossings")
    assert result.a == 1101 and result.ring_crossings == 4

    core_calls = machine.supervisor.activate(">serve>ls_coredata")
    count = machine.memory.peek_block(core_calls.placed.addr, 1)[0]
    print(f"   ring-0 call counter: {count}")

    print("== user calls the ring-0 gate directly ==")
    try:
        machine.run(process, direct, ring=4)
    except Fault as fault:
        print(f"   refused: {fault.code.name} — ring 4 is outside core's gate extension (R3=1)")

    print()
    print("Layering is enforced by brackets alone: no check lives in the")
    print("layer-1 code, so modifying ring 1 cannot open ring 0 (p. 36).")


if __name__ == "__main__":
    main()
