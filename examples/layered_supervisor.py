#!/usr/bin/env python3
"""A layered supervisor enforced by rings (paper pp. 34-36).

The lowest-level primitives live in ring 0; the rest of the supervisor
lives in ring 1.  Gates into ring 0 are reachable *only from ring 1* —
they are the internal interface between the layers — while ring 1
exports gates to the user rings.  A user program's service request
flows 4 -> 1 -> 0 -> 1 -> 4, every crossing performed by the hardware
CALL/RETURN without software help.

The demo then shows the layering enforced: the user calling the ring-0
gate directly is refused, and a change to the ring-1 layer cannot touch
ring-0 data (the error-confinement argument for layered supervisors).

Run:  python examples/layered_supervisor.py
"""

from repro import AclEntry, Fault, Machine, RingBracketSpec

CORE = """
; core - ring-0 primitives; gates reachable only from ring 1
        .seg    core
        .gates  1
prim::  aos     l_calls,*      ; ring-0 bookkeeping
        ada     =1000          ; "the privileged operation"
        return  pr4|0
l_calls: .its   coredata
"""

CORE_DATA_ACL = [AclEntry("*", RingBracketSpec.data(0))]

LAYER1 = """
; layer1 - ring-1 supervisor layer; gates reachable from rings 2-5
        .seg    layer1
        .gates  1
serve:: eap6    pr0|0          ; my stack base, before PR0 is clobbered
        spr4    pr6|1          ; save the user's return pointer
        ada     =100           ; layer-1 work
        eap4    back
        call    l_prim,*       ; internal interface: ring 1 -> ring 0
back:   eap4    pr6|1,*        ; restore the user's return pointer
        return  pr4|0
l_prim: .its    core$prim
"""

APP = """
; app - an ordinary ring-4 program
        .seg    app
main::  lda     =1
        eap4    back
        call    l_serve,*
back:   halt
l_serve: .its   layer1$serve
"""

DIRECT = """
; direct - a ring-4 program trying to skip the ring-1 layer
        .seg    direct
main::  eap4    back
        call    l_prim,*
back:   halt
l_prim: .its    core$prim
"""


def main() -> None:
    machine = Machine()
    user = machine.add_user("u")

    machine.store_data(">sys>coredata", [0], acl=CORE_DATA_ACL)
    machine.store_program(
        ">sys>core",
        CORE,
        acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=1))],
    )
    machine.store_program(
        ">sys>layer1",
        LAYER1,
        acl=[AclEntry("*", RingBracketSpec.procedure(1, callable_from=5))],
    )
    machine.store_program(
        ">udd>u>app", APP, acl=[AclEntry("*", RingBracketSpec.procedure(4))]
    )
    machine.store_program(
        ">udd>u>direct", DIRECT, acl=[AclEntry("*", RingBracketSpec.procedure(4))]
    )

    process = machine.login(user)
    machine.initiate(process, ">udd>u>app")
    machine.initiate(process, ">udd>u>direct")

    print("== service request through the layers ==")
    result = machine.run(process, "app$main", ring=4)
    print(f"   result A = {result.a}  (1 + 100 from ring 1 + 1000 from ring 0)")
    print(f"   ring crossings: {result.ring_crossings}  (4->1, 1->0, 0->1, 1->4)")
    print(f"   back in ring {result.ring}, {result.cycles} cycles, no supervisor traps for the crossings")
    assert result.a == 1101 and result.ring_crossings == 4

    core_calls = machine.supervisor.activate(">sys>coredata")
    count = machine.memory.peek_block(core_calls.placed.addr, 1)[0]
    print(f"   ring-0 call counter: {count}")

    print("== user calls the ring-0 gate directly ==")
    try:
        machine.run(process, "direct$main", ring=4)
    except Fault as fault:
        print(f"   refused: {fault.code.name} — ring 4 is outside core's gate extension (R3=1)")

    print()
    print("Layering is enforced by brackets alone: no check lives in the")
    print("layer-1 code, so modifying ring 1 cannot open ring 0 (p. 36).")


if __name__ == "__main__":
    main()
