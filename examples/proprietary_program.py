#!/usr/bin/env python3
"""A proprietary protected subsystem: callable but not readable.

The paper's market-place example (p. 37): "a proprietary compiler"
offered as a protected subsystem.  Alice sells the *use* of her
algorithm without revealing its text: the ACL entry she grants bob has
the execute flag on and the **read flag off** — instruction fetch needs
only the execute bracket (Figure 4), but every attempt to read the
segment as data is refused (Figure 6).

Bob can call the gate and get answers; he cannot disassemble, copy, or
even load a single word of the code.  Alice, matching her own ACL
entry, reads it freely.

Run:  python examples/proprietary_program.py
"""

from repro import AclEntry, Fault, Machine, RingBracketSpec

#: Alice's secret-sauce algorithm (three-instruction trade secret).
SECRET_ALGORITHM = """
        .seg    magic
        .gates  1
compute:: als   2              ; the proprietary transformation:
        ada     =7             ;   f(x) = 4x + 7
        return  pr4|0
"""

CLIENT = """
        .seg    client
main::  lda     =5
        eap4    back
        call    l_magic,*
back:   halt                   ; A = f(5) = 27
l_magic: .its   magic$compute
"""

PIRATE = """
        .seg    pirate
main::  lda     l_code,*       ; try to read the algorithm's first word
        halt
l_code: .its    magic
"""


def main() -> None:
    machine = Machine(services=False)
    alice = machine.add_user("alice")
    bob = machine.add_user("bob")

    machine.store_program(
        ">udd>alice>magic",
        SECRET_ALGORITHM,
        owner=alice,
        acl=[
            # alice: full access to her own property
            AclEntry(
                "alice",
                RingBracketSpec(r1=4, r2=4, r3=5, read=True, execute=True, gate=1),
            ),
            # everyone else: execute-only, through the gate
            AclEntry(
                "*",
                RingBracketSpec(r1=4, r2=4, r3=5, read=False, execute=True, gate=1),
            ),
        ],
    )
    machine.store_program(
        ">udd>bob>client",
        CLIENT,
        owner=bob,
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )
    machine.store_program(
        ">udd>bob>pirate",
        PIRATE,
        owner=bob,
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )

    process = machine.login(bob)
    machine.initiate(process, ">udd>bob>client")
    machine.initiate(process, ">udd>bob>pirate")

    print("== bob uses the proprietary subsystem ==")
    result = machine.run(process, "client$main", ring=4)
    print(f"   magic$compute(5) = {result.a}")
    assert result.a == 27

    print("== bob tries to read the algorithm ==")
    try:
        machine.run(process, "pirate$main", ring=4)
    except Fault as fault:
        print(f"   refused: {fault.code.name} — execute permission does not imply read")

    print("== alice, the owner, reads her own code ==")
    alice_process = machine.login(alice)
    machine.initiate(alice_process, ">udd>alice>magic")
    machine.store_program(
        ">udd>alice>reader",
        PIRATE.replace(".seg    pirate", ".seg    owner_reader"),
        owner=alice,
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )
    machine.initiate(alice_process, ">udd>alice>reader")
    result = machine.run(alice_process, "owner_reader$main", ring=4)
    print(f"   first word of her code: {result.a:#o}")

    print()
    print("One segment, two ACL entries: the same physical code is a black")
    print("box to bob and an open book to alice — access control per user,")
    print("per capability, enforced on every reference.")


if __name__ == "__main__":
    main()
