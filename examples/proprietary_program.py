#!/usr/bin/env python3
"""A proprietary protected subsystem: callable but not readable.

The paper's market-place example (p. 37): "a proprietary compiler"
offered as a protected subsystem.  Alice sells the *use* of her
algorithm without revealing its text: the ACL entry she grants bob has
the execute flag on and the **read flag off** — instruction fetch needs
only the execute bracket (Figure 4), but every attempt to read the
segment as data is refused (Figure 6).

Bob can call the gate and get answers; he cannot disassemble, copy, or
even load a single word of the code.  Alice, matching her own ACL
entry, reads it freely.

The algorithm and both client programs come from the serving catalog
(:mod:`repro.serve.catalog`, program ``proprietary``) so the same
trade secret is a multi-tenant gateway workload; this script installs
them on a standalone machine and adds the owner's-eye view.

Run:  python examples/proprietary_program.py
"""

from repro import AclEntry, Fault, Machine, RingBracketSpec
from repro.serve.catalog import build_program, install_image

#: alice's private reader: load the first word of her own code
OWNER_READER = """
        .seg    owner_reader
main::  lda     l_code,*
        halt
l_code: .its    magic
"""


def main() -> None:
    machine = Machine(services=False)
    alice = machine.add_user("alice")
    bob = machine.add_user("bob")

    # the catalog's execute-only subsystem: f(x) = 4x + 7
    client_image = build_program("proprietary", {"value": 5})
    pirate_image = build_program("proprietary", {"peek": 1})

    process = machine.login(bob)
    client = install_image(machine, process, client_image)
    pirate = install_image(machine, process, pirate_image)

    print("== bob uses the proprietary subsystem ==")
    result = machine.run(process, client, ring=4)
    print(f"   pp_magic$compute(5) = {result.a}")
    assert result.a == 27

    print("== bob tries to read the algorithm ==")
    try:
        machine.run(process, pirate, ring=4)
    except Fault as fault:
        print(f"   refused: {fault.code.name} — execute permission does not imply read")

    print("== alice, the owner, reads her own code ==")
    # same source text as the served gate, but under alice's own ACL:
    # read on for her, execute-only for everyone else
    _, gate_source, _ = client_image.segments[0]
    machine.store_program(
        ">udd>alice>magic",
        gate_source.replace(".seg    pp_magic", ".seg    magic"),
        owner=alice,
        acl=[
            AclEntry(
                "alice",
                RingBracketSpec(r1=4, r2=4, r3=5, read=True, execute=True, gate=1),
            ),
            AclEntry(
                "*",
                RingBracketSpec(r1=4, r2=4, r3=5, read=False, execute=True, gate=1),
            ),
        ],
    )
    machine.store_program(
        ">udd>alice>reader",
        OWNER_READER,
        owner=alice,
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )
    alice_process = machine.login(alice)
    machine.initiate(alice_process, ">udd>alice>magic")
    machine.initiate(alice_process, ">udd>alice>reader")
    result = machine.run(alice_process, "owner_reader$main", ring=4)
    print(f"   first word of her code: {result.a:#o}")

    print()
    print("One segment, two ACL entries: the same physical code is a black")
    print("box to bob and an open book to alice — access control per user,")
    print("per capability, enforced on every reference.")


if __name__ == "__main__":
    main()
