#!/usr/bin/env python3
"""Dynamic linking: linkage faults and link snapping.

Multics (the system this paper's hardware serves) resolved
inter-segment references lazily: a link word is born in a faulting
state; the first reference traps, the supervisor activates the target,
snaps the link, and retries.  This demo runs the same program with
eager and lazy linking and shows the one-time snap cost — and that the
effective-ring protection of Figure 5 is indifferent to *when* the link
was resolved.

Run:  python examples/dynamic_linking.py
"""

from repro import AclEntry, Machine, RingBracketSpec
from repro.krnl.linkage import LINKAGE_FAULT_SEGNO

PROGRAM = """
        .seg    prog
main::  lda     =11
        eap4    b1
        call    l_double,*     ; first use: linkage fault + snap (lazy)
b1:     eap4    b2
        call    l_double,*     ; second use: link already snapped
b2:     halt
l_double: .its  double$entry
"""

LIBRARY = """
        .seg    double
        .gates  1
entry:: als     1
        return  pr4|0
"""


def run(lazy: bool):
    machine = Machine(services=False, lazy_linking=lazy)
    user = machine.add_user("u")
    machine.store_program(
        ">lib>double", LIBRARY, acl=[AclEntry("*", RingBracketSpec.procedure(4))]
    )
    machine.store_program(
        ">udd>u>prog", PROGRAM, acl=[AclEntry("*", RingBracketSpec.procedure(4))]
    )
    process = machine.login(user)
    machine.initiate(process, ">udd>u>prog")
    result = machine.run(process, "prog$main", ring=4)
    return machine, result


def main() -> None:
    eager_machine, eager = run(lazy=False)
    lazy_machine, lazy = run(lazy=True)

    print("== the same program, eager vs lazy linking ==")
    print(f"   eager: A = {eager.a}, {eager.cycles} cycles, "
          f"{eager_machine.supervisor.linkage.snaps} snaps")
    print(f"   lazy:  A = {lazy.a}, {lazy.cycles} cycles, "
          f"{lazy_machine.supervisor.linkage.snaps} snap "
          f"(one linkage fault, then free)")
    assert eager.a == lazy.a == 44
    assert lazy_machine.supervisor.linkage.snaps == 1
    assert lazy.cycles > eager.cycles

    print()
    print(f"Unresolved links name reserved segment {LINKAGE_FAULT_SEGNO};")
    print("the first reference traps ACV_SEGNO_BOUND, the supervisor")
    print("activates the target, patches the link word (preserving its")
    print("RING field), and retries the instruction — link snapping, as")
    print("Multics did it.")


if __name__ == "__main__":
    main()
