#!/usr/bin/env python3
"""Boot the miniature computer utility — everything at once.

One script that stands the whole reproduced system up the way the
paper's introduction imagines a computer utility: a layered supervisor
(rings 0–1), a user-provided protected subsystem (ring 2), ordinary
users in ring 4 time-shared on one processor, the interval timer
guarding against runaways, and a static ring-security audit of the
resulting configuration.

Run:  python examples/boot_utility.py
"""

from repro import AclEntry, Machine, RingBracketSpec
from repro.analysis.audit import audit, render_audit

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


def main() -> None:
    machine = Machine()  # standard ring-0 services installed
    machine.supervisor.timer_quantum = 500
    machine.supervisor.timer_limit = 50

    print("=== booting the utility ===")

    # --- vendor subsystem: an audited counter in ring 2 -----------------
    vendor = machine.add_user("vendor")
    machine.store_data(
        ">subsys>tally", [0], owner=vendor,
        acl=[AclEntry("*", RingBracketSpec.data(2))],
    )
    machine.store_program(
        ">subsys>meter",
        """
        .seg    meter
        .gates  1
charge:: aos    l_tally,*      ; meter every use
        lda     l_tally,*
        return  pr4|0
l_tally: .its   tally
""",
        owner=vendor,
        acl=[AclEntry("*", RingBracketSpec.procedure(2, callable_from=5))],
    )

    # --- two subscribers, each with their own program --------------------
    alice = machine.add_user("alice")
    bob = machine.add_user("bob")
    for name, user, uses in (("alice", alice, 3), ("bob", bob, 2)):
        calls = "".join(
            f"""
        eap4    b{name}{i}
        call    l_meter,*
b{name}{i}: nop
"""
            for i in range(uses)
        )
        machine.store_program(
            f">udd>{name}>session",
            f"""
        .seg    session_{name}
main::  lda     ={uses * 1000}
{calls}
        eap4    bw_{name}
        call    l_write,*      ; log the last meter reading
bw_{name}: halt
l_meter: .its   meter$charge
l_write: .its   svc$write
""",
            owner=user,
            acl=USER_ACL,
        )

    process_a = machine.login(alice)
    process_b = machine.login(bob)
    machine.initiate(process_a, ">udd>alice>session")
    machine.initiate(process_b, ">udd>bob>session")

    # --- time-share the processor over both sessions --------------------
    scheduler = machine.make_scheduler(quantum=11)
    job_a = scheduler.add(process_a, "session_alice$main", ring=4)
    job_b = scheduler.add(process_b, "session_bob$main", ring=4)
    total = scheduler.run()

    tally = machine.supervisor.activate(">subsys>tally")
    count = machine.memory.peek_block(tally.placed.addr, 1)[0]

    print(f"  sessions complete: {total} instructions, "
          f"{scheduler.context_switches} context switches")
    print(f"  vendor's meter counted {count} uses "
          f"(alice 3 + bob 2, every one through the ring-2 gate)")
    print(f"  console log (last reading per session): {machine.console}")
    assert count == 5

    # --- audit what we built ---------------------------------------------
    print()
    print("=== static ring-security audit ===")
    report = audit(machine.fs, [alice, bob, vendor])
    print(render_audit(report))
    assert report.injection_theorem_holds

    print()
    print("Supervisor in rings 0-1, vendor subsystem in ring 2, users in")
    print("ring 4, one processor multiplexed over separate virtual")
    print("memories — the paper's computer utility, booted and audited.")


if __name__ == "__main__":
    main()
